"""Tests for BTU billing and banded transfer pricing, with hypothesis
properties on the rounding arithmetic."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.billing import BillingModel
from repro.cloud.instance import LARGE, SMALL
from repro.cloud.region import EC2_REGIONS
from repro.errors import BillingError

US = EC2_REGIONS["us-east-virginia"]
SP = EC2_REGIONS["sa-sao-paulo"]


@pytest.fixture
def billing() -> BillingModel:
    return BillingModel()


class TestBtus:
    def test_zero_uptime_is_free(self, billing):
        assert billing.btus(0.0) == 0

    def test_any_uptime_pays_a_full_btu(self, billing):
        assert billing.btus(1.0) == 1
        assert billing.btus(3599.0) == 1

    def test_exact_boundary(self, billing):
        assert billing.btus(3600.0) == 1
        assert billing.btus(7200.0) == 2

    def test_just_over_boundary(self, billing):
        assert billing.btus(3600.01) == 2

    def test_negative_uptime(self, billing):
        with pytest.raises(BillingError):
            billing.btus(-1.0)

    def test_paid_seconds(self, billing):
        assert billing.paid_seconds(100.0) == 3600.0
        assert billing.paid_seconds(4000.0) == 7200.0


class TestVmCost:
    def test_small_us_east(self, billing):
        assert billing.vm_cost(1800.0, SMALL, US) == pytest.approx(0.08)

    def test_multi_btu(self, billing):
        assert billing.vm_cost(7300.0, SMALL, US) == pytest.approx(3 * 0.08)

    def test_large_price(self, billing):
        assert billing.vm_cost(3600.0, LARGE, US) == pytest.approx(0.32)


class TestRemainingInBtu:
    def test_fresh_vm_has_full_btu(self, billing):
        assert billing.remaining_in_btu(0.0) == 3600.0

    def test_mid_btu(self, billing):
        assert billing.remaining_in_btu(1000.0) == pytest.approx(2600.0)

    def test_exact_boundary_gives_full_btu(self, billing):
        assert billing.remaining_in_btu(3600.0) == 3600.0

    def test_negative(self, billing):
        with pytest.raises(BillingError):
            billing.remaining_in_btu(-5.0)


class TestTransferCost:
    def test_intra_region_free(self, billing):
        assert billing.transfer_cost(100.0, US, US) == 0.0

    def test_first_gb_free(self, billing):
        assert billing.transfer_cost(1.0, US, SP) == 0.0

    def test_band_charges_source_price(self, billing):
        # 5 GB total: first 1 free, 4 billed at the source region's rate
        assert billing.transfer_cost(5.0, US, SP) == pytest.approx(4 * 0.12)
        assert billing.transfer_cost(5.0, SP, US) == pytest.approx(4 * 0.25)

    def test_cumulative_monthly_total(self, billing):
        # already past the free tier: the whole new volume is billed
        assert billing.transfer_cost(3.0, US, SP, monthly_total_gb=10.0) == (
            pytest.approx(3 * 0.12)
        )

    def test_above_band_ceiling_free(self, billing):
        assert billing.transfer_cost(5.0, US, SP, monthly_total_gb=20_000.0) == 0.0

    def test_straddles_ceiling(self, billing):
        cost = billing.transfer_cost(100.0, US, SP, monthly_total_gb=10_200.0)
        assert cost == pytest.approx(40 * 0.12)  # only up to 10240 GB billed

    def test_zero_volume(self, billing):
        assert billing.transfer_cost(0.0, US, SP) == 0.0

    def test_negative_volume(self, billing):
        with pytest.raises(BillingError):
            billing.transfer_cost(-1.0, US, SP)


class TestValidation:
    def test_bad_btu(self):
        with pytest.raises(BillingError):
            BillingModel(btu_seconds=0)

    def test_bad_band(self):
        with pytest.raises(BillingError):
            BillingModel(transfer_free_gb=100.0, transfer_band_ceiling_gb=1.0)


class TestBillingProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(0, 1e7, allow_nan=False))
    def test_paid_at_least_uptime(self, uptime):
        b = BillingModel()
        assert b.paid_seconds(uptime) >= uptime - 1e-6

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.001, 1e7, allow_nan=False))
    def test_paid_within_one_btu_of_uptime(self, uptime):
        b = BillingModel()
        assert b.paid_seconds(uptime) < uptime + b.btu_seconds + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0, 1e7), st.floats(0, 1e7))
    def test_btus_monotonic(self, a, b):
        bill = BillingModel()
        lo, hi = sorted((a, b))
        assert bill.btus(lo) <= bill.btus(hi)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0, 1e6, allow_nan=False))
    def test_remaining_in_half_open_btu(self, uptime):
        b = BillingModel()
        r = b.remaining_in_btu(uptime)
        assert 0 < r <= b.btu_seconds

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 200, allow_nan=False),
    )
    def test_transfer_cost_splits_additively(self, v1, v2, base):
        """Billing v1 then v2 equals billing v1+v2 at once."""
        b = BillingModel()
        together = b.transfer_cost(v1 + v2, US, SP, monthly_total_gb=base)
        split = b.transfer_cost(v1, US, SP, monthly_total_gb=base) + b.transfer_cost(
            v2, US, SP, monthly_total_gb=base + v1
        )
        assert together == pytest.approx(split, abs=1e-9)
