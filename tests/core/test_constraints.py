"""Constraints: the library-wide spelling of an acceptable outcome."""

import pytest
from hypothesis import given, strategies as st

from repro.core.constraints import CONSTRAINT_NAMES, Constraints, ConstraintViolation
from repro.errors import ExperimentError

_limit = st.one_of(st.none(), st.floats(min_value=0.01, max_value=1e6))
_actual = st.floats(min_value=0.0, max_value=2e6)


class TestValidation:
    def test_default_is_unconstrained(self):
        c = Constraints()
        assert c.unconstrained
        assert c.feasible(makespan=1e12, cost=1e12, vm_count=10**9)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(deadline=0), dict(deadline=-5), dict(budget=0), dict(max_vms=0)],
    )
    def test_nonpositive_bounds_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            Constraints(**kwargs)

    def test_from_json_unknown_key_suggests(self):
        with pytest.raises(ExperimentError, match="deadline"):
            Constraints.from_json({"deadlin": 100})

    def test_json_round_trip(self):
        c = Constraints(deadline=3600, budget=12.5)
        assert Constraints.from_json(c.to_json()) == c


class TestCheck:
    def test_violations_in_reporting_order(self):
        c = Constraints(deadline=10, budget=1, max_vms=2)
        violations = c.check(makespan=20, cost=5, vm_count=9)
        assert [v.constraint for v in violations] == list(CONSTRAINT_NAMES)

    def test_unsupplied_axes_are_skipped(self):
        c = Constraints(deadline=10, budget=1)
        assert c.check(cost=0.5) == ()
        assert not c.feasible(makespan=11)

    def test_violation_reports_excess(self):
        (v,) = Constraints(deadline=100).check(makespan=123)
        assert v == ConstraintViolation("deadline", 100, 123)
        assert v.excess == 23
        assert "deadline: 123s > 100s limit (+23)" == str(v)

    def test_describe(self):
        assert Constraints().describe() == "unconstrained"
        assert (
            Constraints(deadline=3600, budget=12).describe()
            == "deadline<=3600s, budget<=$12"
        )

    @given(deadline=_limit, budget=_limit, makespan=_actual, cost=_actual)
    def test_feasible_iff_every_bound_holds(self, deadline, budget, makespan, cost):
        c = Constraints(deadline=deadline, budget=budget)
        expected = (deadline is None or makespan <= deadline) and (
            budget is None or cost <= budget
        )
        assert c.feasible(makespan=makespan, cost=cost) == expected
        for v in c.check(makespan=makespan, cost=cost):
            assert v.excess > 0


class TestScheduleIntegration:
    def test_check_schedule_and_metrics_verdict(self):
        import repro.api as api

        platform = api.CloudPlatform.ec2()
        sched = api.reference_schedule(api.sequential(), platform)
        loose = Constraints(deadline=sched.makespan + 1)
        tight = Constraints(deadline=max(sched.makespan / 2, 0.001))
        assert sched.check_constraints(loose) == ()
        assert sched.check_constraints(tight)

        m = api.evaluate(sched, constraints=tight)
        assert m.feasible is False
        assert "deadline" in m.violation_summary()
        assert api.evaluate(sched, constraints=loose).feasible is True
        assert api.evaluate(sched).feasible is None
