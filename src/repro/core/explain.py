"""Explainable cost accounting.

`explain(schedule)` decomposes where the money and the waste go: per VM,
how many BTUs were paid and why (execution, schedule gaps, final-BTU
tail), plus the cross-region egress bill — the breakdown behind the
paper's Figure 5 aggregates, per machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.schedule import Schedule
from repro.util.tables import format_table


@dataclass(frozen=True)
class VmCostLine:
    """One VM's bill, decomposed."""

    name: str
    itype: str
    region: str
    tasks: int
    uptime_seconds: float
    btus: int
    cost: float
    busy_seconds: float
    #: idle between placements while the VM was kept alive
    gap_seconds: float
    #: unused remainder of the last paid BTU
    tail_seconds: float

    @property
    def idle_seconds(self) -> float:
        return self.gap_seconds + self.tail_seconds

    @property
    def utilization(self) -> float:
        paid = self.btus and self.busy_seconds + self.idle_seconds
        return self.busy_seconds / paid if paid else 0.0


@dataclass(frozen=True)
class CostExplanation:
    """A schedule's full bill with per-VM decomposition."""

    label: str
    lines: Tuple[VmCostLine, ...]
    rent_cost: float
    transfer_cost: float
    transfer_volumes: Tuple[Tuple[str, str, float], ...]

    @property
    def total_cost(self) -> float:
        return self.rent_cost + self.transfer_cost

    @property
    def total_gap_seconds(self) -> float:
        return sum(l.gap_seconds for l in self.lines)

    @property
    def total_tail_seconds(self) -> float:
        return sum(l.tail_seconds for l in self.lines)

    def worst_idlers(self, top: int = 3) -> List[VmCostLine]:
        """VMs wasting the most paid time, worst first."""
        return sorted(self.lines, key=lambda l: -l.idle_seconds)[:top]


def explain(schedule: Schedule) -> CostExplanation:
    """Decompose *schedule*'s bill."""
    billing = schedule.platform.billing
    lines: List[VmCostLine] = []
    for vm in schedule.vms:
        paid = vm.paid_seconds(billing)
        gaps = sum(g.length for g in vm.busy_intervals().gaps())
        # boot time (if billed) counts as gap-like waste at the front
        lead = vm.placements[0].start - vm.rent_start
        tail = paid - vm.uptime_seconds
        lines.append(
            VmCostLine(
                name=vm.name,
                itype=vm.itype.name,
                region=vm.region.name,
                tasks=len(vm.placements),
                uptime_seconds=vm.uptime_seconds,
                btus=billing.btus(vm.uptime_seconds),
                cost=vm.cost(billing),
                busy_seconds=vm.busy_seconds,
                gap_seconds=gaps + lead,
                tail_seconds=tail,
            )
        )
    return CostExplanation(
        label=schedule.label,
        lines=tuple(lines),
        rent_cost=schedule.rent_cost,
        transfer_cost=schedule.transfer_cost,
        transfer_volumes=tuple(schedule.transfer_volumes()),
    )


def render_explanation(explanation: CostExplanation) -> str:
    rows = [
        (
            l.name,
            l.itype,
            l.tasks,
            l.btus,
            l.cost,
            l.busy_seconds,
            l.gap_seconds,
            l.tail_seconds,
        )
        for l in explanation.lines
    ]
    table = format_table(
        ["VM", "type", "tasks", "BTUs", "cost $", "busy s", "gaps s", "tail s"],
        rows,
        title=f"Cost breakdown — {explanation.label}",
    )
    footer = (
        f"\nrent ${explanation.rent_cost:.2f}"
        f" + egress ${explanation.transfer_cost:.2f}"
        f" = ${explanation.total_cost:.2f}; "
        f"waste: {explanation.total_gap_seconds:,.0f}s in gaps, "
        f"{explanation.total_tail_seconds:,.0f}s in final-BTU tails"
    )
    return table + footer
