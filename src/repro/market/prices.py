"""Seed-deterministic price processes per (flavor, region).

A :class:`PriceProcess` describes *how* the unit price of an instance
flavor moves over simulated time; realizing it for a concrete
``(seed, flavor, region)`` yields a :class:`PricePath` — a
piecewise-constant **multiplier** of the region's list price.  A
multiplier of exactly ``1.0`` is the paper's fixed on-demand price;
spot markets quote multipliers well below 1 that occasionally spike
above it.

Three generators cover the scenario axes of the pricing sweep:

* :class:`ConstantPrice` — a flat multiplier (the degenerate market; a
  multiplier of 1.0 is byte-identical to no market at all);
* :class:`StepTracePrice` — an explicit piecewise-constant trace
  (replayed price histories, adversarial spike scenarios);
* :class:`MeanRevertingPrice` — a clipped AR(1) random walk around a
  mean, the standard stylized model of spot price series.

Determinism contract
--------------------
Paths follow the :mod:`repro.simulator.faults` keyed-hash rule: every
random draw comes from a private stream keyed by
``(seed, "price", flavor, region, chunk)`` — never a shared generator —
so a path depends only on its identity, not on when or how often the
simulation asks for prices.  The walk is generated lazily in fixed-size
chunks; chunk *k* is a pure function of the seed and the end state of
chunk *k − 1*, so extending the path never perturbs already-queried
prefixes.  Identical seeds reproduce identical price paths (and hence
identical interruption times) across the serial, thread, and process
execution backends.
"""

from __future__ import annotations

import bisect
import math
import threading
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulator.faults import _stream

#: steps per lazily generated random-walk chunk
_WALK_CHUNK = 256


class PricePath:
    """A realized piecewise-constant price-multiplier path.

    Subclasses implement :meth:`multiplier_at`, :meth:`integral`, and
    :meth:`next_crossing_above`; all times are absolute simulation
    seconds from 0.
    """

    #: True only for the constant path — lets billing take the exact
    #: ``price × btus × multiplier`` shortcut (no float re-association).
    is_constant: bool = False

    def multiplier_at(self, t: float) -> float:
        """Price multiplier in effect at time *t*."""
        raise NotImplementedError

    def integral(self, start: float, end: float) -> float:
        """``∫ multiplier(t) dt`` over ``[start, end]`` (seconds)."""
        raise NotImplementedError

    def next_crossing_above(
        self, threshold: float, start: float, horizon: float
    ) -> float:
        """First time in ``[start, horizon]`` where the multiplier
        *exceeds* *threshold*, or ``inf`` if it never does.

        A path already above the threshold at *start* returns *start*
        itself (an immediately out-bid spot request).
        """
        raise NotImplementedError


class _ConstantPath(PricePath):
    is_constant = True

    def __init__(self, multiplier: float) -> None:
        self.multiplier = multiplier

    def multiplier_at(self, t: float) -> float:
        return self.multiplier

    def integral(self, start: float, end: float) -> float:
        return (end - start) * self.multiplier

    def next_crossing_above(
        self, threshold: float, start: float, horizon: float
    ) -> float:
        return start if self.multiplier > threshold else math.inf


class _StepPath(PricePath):
    """Piecewise-constant path from explicit ``(times, multipliers)``.

    ``times[0]`` must be 0; the final multiplier holds forever.
    """

    def __init__(self, times: Tuple[float, ...], values: Tuple[float, ...]) -> None:
        self.times = list(times)
        self.values = list(values)
        # cumulative integral up to each segment start, for O(log n) queries
        self._cum = [0.0]
        for i in range(1, len(self.times)):
            seg = (self.times[i] - self.times[i - 1]) * self.values[i - 1]
            self._cum.append(self._cum[-1] + seg)

    def _index(self, t: float) -> int:
        return max(bisect.bisect_right(self.times, t) - 1, 0)

    def multiplier_at(self, t: float) -> float:
        return self.values[self._index(t)]

    def _cum_at(self, t: float) -> float:
        i = self._index(t)
        return self._cum[i] + (t - self.times[i]) * self.values[i]

    def integral(self, start: float, end: float) -> float:
        return self._cum_at(end) - self._cum_at(start)

    def next_crossing_above(
        self, threshold: float, start: float, horizon: float
    ) -> float:
        i = self._index(start)
        if self.values[i] > threshold:
            return start
        for j in range(i + 1, len(self.times)):
            if self.times[j] > horizon:
                return math.inf
            if self.values[j] > threshold:
                return self.times[j]
        return math.inf


class _WalkPath(PricePath):
    """Lazily generated mean-reverting AR(1) walk on a fixed time grid.

    ``v[k+1] = v[k] + reversion · (mean − v[k]) + sigma · ε[k]``, clipped
    to ``[floor, cap]``; each value holds for ``step_seconds``.  Values
    are generated chunk-by-chunk from private keyed streams, so the path
    is a pure function of ``(seed, flavor, region)``.
    """

    def __init__(
        self,
        process: "MeanRevertingPrice",
        seed: int,
        flavor: str,
        region: str,
    ) -> None:
        self.p = process
        self.seed = seed
        self.flavor = flavor
        self.region = region
        start = process.start if process.start is not None else process.mean
        self.values: List[float] = [float(np.clip(start, process.floor, process.cap))]
        # cumulative integral (in multiplier-seconds) up to step k
        self._cum: List[float] = [0.0]
        # paths are shared across cells of the thread backend
        self._lock = threading.Lock()

    def _ensure(self, steps: int) -> None:
        """Extend the realized path to cover at least *steps* values."""
        p = self.p
        with self._lock:
            while len(self.values) <= steps:
                chunk = len(self.values) // _WALK_CHUNK
                rng = _stream(self.seed, "price", self.flavor, self.region, chunk)
                eps = rng.standard_normal(_WALK_CHUNK)
                v = self.values[-1]
                for e in eps:
                    v = v + p.reversion * (p.mean - v) + p.sigma * float(e)
                    v = min(max(v, p.floor), p.cap)
                    self.values.append(v)
                    self._cum.append(self._cum[-1] + self.values[-2] * p.step_seconds)

    def _step(self, t: float) -> int:
        return max(int(t // self.p.step_seconds), 0)

    def multiplier_at(self, t: float) -> float:
        k = self._step(t)
        self._ensure(k)
        return self.values[k]

    def _cum_at(self, t: float) -> float:
        k = self._step(t)
        self._ensure(k)
        return self._cum[k] + (t - k * self.p.step_seconds) * self.values[k]

    def integral(self, start: float, end: float) -> float:
        return self._cum_at(end) - self._cum_at(start)

    def next_crossing_above(
        self, threshold: float, start: float, horizon: float
    ) -> float:
        if threshold >= self.p.cap:
            return math.inf  # the clip bound can never be exceeded
        k = self._step(start)
        self._ensure(k)
        if self.values[k] > threshold:
            return start
        last = self._step(horizon) if math.isfinite(horizon) else k
        while k < last:
            k += 1
            self._ensure(k)
            if self.values[k] > threshold:
                return k * self.p.step_seconds
        return math.inf


# ----------------------------------------------------------------------
# processes (immutable descriptions; build_path realizes them)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PriceProcess:
    """Describes a price-multiplier process; hashable and immutable so a
    process can key caches and ride inside a frozen ``FaultPlan``."""

    def build_path(self, seed: int, flavor: str, region: str) -> PricePath:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantPrice(PriceProcess):
    """A flat multiplier of the list price (1.0 ≡ the paper's market)."""

    multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.multiplier < 0:
            raise SimulationError(
                f"price multiplier must be >= 0, got {self.multiplier}"
            )

    def build_path(self, seed: int, flavor: str, region: str) -> PricePath:
        return _ConstantPath(self.multiplier)


@dataclass(frozen=True)
class StepTracePrice(PriceProcess):
    """An explicit piecewise-constant multiplier trace.

    ``times`` must start at 0 and strictly increase; ``multipliers[i]``
    holds on ``[times[i], times[i+1])`` and the last one holds forever.
    """

    times: Tuple[float, ...] = (0.0,)
    multipliers: Tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if len(self.times) != len(self.multipliers) or not self.times:
            raise SimulationError("times and multipliers must pair up, non-empty")
        if self.times[0] != 0.0:
            raise SimulationError("a price trace must start at time 0")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise SimulationError("price trace times must strictly increase")
        if any(m < 0 for m in self.multipliers):
            raise SimulationError("price multipliers must be >= 0")

    def build_path(self, seed: int, flavor: str, region: str) -> PricePath:
        return _StepPath(self.times, self.multipliers)


@dataclass(frozen=True)
class MeanRevertingPrice(PriceProcess):
    """A clipped mean-reverting AR(1) random walk (stylized spot series).

    Defaults model a spot market quoting ~35% of list price with
    occasional excursions above it; raise ``sigma`` or ``cap`` for more
    violent markets.
    """

    mean: float = 0.35
    sigma: float = 0.08
    reversion: float = 0.05
    step_seconds: float = 300.0
    floor: float = 0.05
    cap: float = 4.0
    #: starting multiplier; ``None`` starts at the mean
    start: "float | None" = None

    def __post_init__(self) -> None:
        if self.step_seconds <= 0:
            raise SimulationError("step_seconds must be > 0")
        if not 0 <= self.floor <= self.cap:
            raise SimulationError("need 0 <= floor <= cap")
        if not 0 <= self.reversion <= 1:
            raise SimulationError("reversion must be in [0, 1]")
        if self.sigma < 0:
            raise SimulationError("sigma must be >= 0")

    def build_path(self, seed: int, flavor: str, region: str) -> PricePath:
        return _WalkPath(self, seed, flavor, region)


# ----------------------------------------------------------------------
# realized-path cache
# ----------------------------------------------------------------------
#: (process, seed, flavor, region) -> PricePath.  Paths are pure
#: functions of their key, so the cache is only an amortization of the
#: lazy walk generation; entries never go stale.
_PATHS: dict = {}


def price_path(
    process: PriceProcess, seed: int, flavor: str, region: str
) -> PricePath:
    """The realized (memoized) path of *process* for one identity."""
    key = (process, int(seed), str(flavor), str(region))
    path = _PATHS.get(key)
    if path is None:
        built = process.build_path(int(seed), str(flavor), str(region))
        # setdefault keeps all threads on one shared instance
        path = _PATHS.setdefault(key, built)
    return path
