"""The full cross product: every registered scheduling algorithm on
every paper workflow produces a valid, DES-replayable schedule with
coherent accounting.  New algorithms join this matrix automatically via
the registry."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.base import SCHEDULING_ALGORITHMS, scheduling_algorithm
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel

_PLATFORM = CloudPlatform.ec2()

#: per-algorithm constructor kwargs where defaults need pinning
_PARAMS = {
    "SHEFT-Deadline": {"deadline": 50_000.0, "best_effort": True},
}


@pytest.mark.parametrize("algo_name", sorted(SCHEDULING_ALGORITHMS))
def test_algorithm_on_every_paper_workflow(algo_name, paper_workflow):
    wf = apply_model(paper_workflow, ParetoModel(), seed=31)
    algo = scheduling_algorithm(algo_name, **_PARAMS.get(algo_name, {}))
    sched = algo.schedule(wf, _PLATFORM)
    sched.validate()
    simulate_schedule(sched, check=True)
    # accounting coherence
    billing = _PLATFORM.billing
    paid = sum(vm.paid_seconds(billing) for vm in sched.vms)
    busy = sum(vm.busy_seconds for vm in sched.vms)
    assert paid >= busy - 1e-6
    assert sched.total_idle_seconds == pytest.approx(paid - busy)
    # free only when everything ran on owned (zero-price) capacity
    if any(vm.region.price(vm.itype) > 0 for vm in sched.vms):
        assert sched.total_cost > 0
    else:
        assert sched.total_cost == 0.0
    assert sched.makespan > 0
    # every task assigned exactly once (Schedule enforces; re-assert)
    placed = [p.task_id for vm in sched.vms for p in vm.placements]
    assert sorted(placed) == sorted(wf.task_ids)


def test_registry_size_guard():
    """Adding an algorithm must extend this matrix — keep the count
    explicit so accidental deregistration is caught."""
    assert len(SCHEDULING_ALGORITHMS) == 15, sorted(SCHEDULING_ALGORITHMS)
