"""Tests for the Workflow DAG model."""

import pytest

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


def _simple() -> Workflow:
    wf = Workflow("w")
    for tid, work in (("a", 10.0), ("b", 20.0), ("c", 30.0), ("d", 5.0)):
        wf.add_task(Task(tid, work))
    wf.add_dependency("a", "b", 1.0)
    wf.add_dependency("a", "c", 2.0)
    wf.add_dependency("b", "d")
    wf.add_dependency("c", "d")
    return wf.validate()


class TestConstruction:
    def test_duplicate_task_rejected(self):
        wf = Workflow("w")
        wf.add_task(Task("a", 1.0))
        with pytest.raises(WorkflowError):
            wf.add_task(Task("a", 2.0))

    def test_dependency_unknown_task(self):
        wf = Workflow("w")
        wf.add_task(Task("a", 1.0))
        with pytest.raises(WorkflowError):
            wf.add_dependency("a", "zzz")

    def test_self_dependency_rejected(self):
        wf = Workflow("w")
        wf.add_task(Task("a", 1.0))
        with pytest.raises(WorkflowError):
            wf.add_dependency("a", "a")

    def test_negative_data_rejected(self):
        wf = Workflow("w")
        wf.add_task(Task("a", 1.0))
        wf.add_task(Task("b", 1.0))
        with pytest.raises(WorkflowError):
            wf.add_dependency("a", "b", -0.1)

    def test_cycle_detected(self):
        wf = Workflow("w")
        for t in "abc":
            wf.add_task(Task(t, 1.0))
        wf.add_dependency("a", "b")
        wf.add_dependency("b", "c")
        wf.add_dependency("c", "a")
        with pytest.raises(WorkflowError, match="cycle"):
            wf.validate()

    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w").validate()

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("")


class TestQueries:
    def test_len_contains_iter(self):
        wf = _simple()
        assert len(wf) == 4
        assert "a" in wf and "zzz" not in wf
        assert {t.id for t in wf} == {"a", "b", "c", "d"}

    def test_entry_exit(self):
        wf = _simple()
        assert wf.entry_tasks() == ["a"]
        assert wf.exit_tasks() == ["d"]

    def test_predecessors_successors(self):
        wf = _simple()
        assert wf.predecessors("d") == ["b", "c"]
        assert wf.successors("a") == ["b", "c"]

    def test_data_gb(self):
        wf = _simple()
        assert wf.data_gb("a", "b") == 1.0
        assert wf.data_gb("b", "d") == 0.0
        with pytest.raises(WorkflowError):
            wf.data_gb("a", "d")

    def test_unknown_task_lookup(self):
        with pytest.raises(WorkflowError):
            _simple().task("nope")

    def test_topological_order(self):
        wf = _simple()
        order = wf.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_levels(self):
        wf = _simple()
        assert wf.levels() == [["a"], ["b", "c"], ["d"]]
        assert wf.level_of() == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_max_parallelism(self):
        assert _simple().max_parallelism() == 2

    def test_critical_path_default_weights(self):
        wf = _simple()
        path, length = wf.critical_path()
        assert path == ["a", "c", "d"]
        assert length == 45.0

    def test_critical_path_custom_weights(self):
        wf = _simple()
        # make b the heavy branch
        path, length = wf.critical_path(exec_time=lambda t: {"a": 1, "b": 100, "c": 1, "d": 1}[t])
        assert path == ["a", "b", "d"]
        assert length == 102.0

    def test_critical_path_with_transfers(self):
        wf = _simple()
        path, length = wf.critical_path(
            exec_time=lambda t: 10.0, transfer_time=lambda u, v: 100.0 if (u, v) == ("a", "b") else 0.0
        )
        assert path == ["a", "b", "d"]
        assert length == 130.0

    def test_total_work(self):
        assert _simple().total_work() == 65.0

    def test_ancestors_descendants(self):
        wf = _simple()
        assert wf.ancestors("d") == ["a", "b", "c"]
        assert wf.descendants("a") == ["b", "c", "d"]

    def test_summary_keys(self):
        s = _simple().summary()
        assert s["tasks"] == 4 and s["edges"] == 4
        assert s["max_parallelism"] == 2


class TestTransformation:
    def test_with_works(self):
        wf = _simple()
        new = wf.with_works({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        assert new.task("b").work == 2.0
        assert wf.task("b").work == 20.0
        assert new.edges() == wf.edges()

    def test_with_works_missing_task(self):
        with pytest.raises(WorkflowError, match="missing"):
            _simple().with_works({"a": 1.0})

    def test_with_data_sizes(self):
        wf = _simple()
        new = wf.with_data_sizes({("a", "b"): 9.0})
        assert new.data_gb("a", "b") == 9.0
        assert new.data_gb("a", "c") == 2.0  # untouched edges keep volume

    def test_relabeled(self):
        new = _simple().relabeled("other")
        assert new.name == "other"
        assert len(new) == 4
