"""Ablation: static (pre-planned) vs online (decide-at-ready) scheduling.

The paper's choice of static scheduling assumes exact runtime estimates.
This bench runs the same policies both ways on the same workflows:
noise-free, online pays only its serialized input staging; under 30%
runtime noise, the static plan's timing drifts while online keeps
adapting its placements, quantifying what the static assumption costs.
"""

import statistics

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.core.allocation.heft import HeftScheduler
from repro.experiments.scenarios import scenario
from repro.simulator.executor import ScheduleExecutor
from repro.simulator.online import run_online
from repro.simulator.perturb import lognormal_jitter
from repro.util.tables import format_table
from repro.workflows.generators import montage

POLICIES = ("OneVMperTask", "StartParNotExceed", "StartParExceed")
TRIALS = 10
NOISE = 0.3


def _study(platform):
    wf = scenario("pareto", platform).apply(montage(), SWEEP_SEED)
    rows = {}
    for policy in POLICIES:
        static_plan = HeftScheduler(policy).schedule(wf, platform)
        online_clean = run_online(wf, platform, policy=policy)
        static_noisy, online_noisy = [], []
        for trial in range(TRIALS):
            static_noisy.append(
                ScheduleExecutor(
                    static_plan, runtime_fn=lognormal_jitter(NOISE, seed=trial)
                )
                .run()
                .makespan
            )
            online_noisy.append(
                run_online(
                    wf,
                    platform,
                    policy=policy,
                    runtime_fn=lognormal_jitter(NOISE, seed=trial),
                ).makespan
            )
        rows[policy] = {
            "static_planned": static_plan.makespan,
            "online_clean": online_clean.makespan,
            "static_noisy": statistics.fmean(static_noisy),
            "online_noisy": statistics.fmean(online_noisy),
        }
    return rows


def test_static_vs_online(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    for policy, r in rows.items():
        # noise-free online is close to the static plan (same rules, the
        # only gap is serialized input staging after placement)
        assert r["online_clean"] <= r["static_planned"] * 1.10, policy
        # noise stretches both
        assert r["static_noisy"] > 0 and r["online_noisy"] > 0

    save_artifact(
        artifact_dir,
        "ablation_online.txt",
        format_table(
            ["policy", "static planned", "online clean", "static+noise", "online+noise"],
            [
                (
                    p,
                    r["static_planned"],
                    r["online_clean"],
                    r["static_noisy"],
                    r["online_noisy"],
                )
                for p, r in rows.items()
            ],
            title=f"Static vs online makespan (s), {NOISE:.0%} noise, {TRIALS} trials",
        ),
    )
