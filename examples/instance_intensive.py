#!/usr/bin/env python
"""Instance-intensive workflow streams (the Liu et al. scenario from the
paper's related work): many MapReduce instances arriving over time onto
one shared elastic fleet, scheduled online.

Shows the throughput economics the single-instance evaluation cannot:
as arrivals densify, instances reuse VMs still alive inside their BTU
horizons and the cost per instance drops.

Run:  python examples/instance_intensive.py
"""

from repro import CloudPlatform, mapreduce
from repro.simulator.stream import poisson_stream, run_stream
from repro.util.tables import format_table


def main() -> None:
    platform = CloudPlatform.ec2()
    workflow = mapreduce(mappers=4, reducers=2)
    instances = 10

    rows = []
    for label, mean_gap in (
        ("sparse (8h apart)", 28_800.0),
        ("hourly", 3_600.0),
        ("every 10 min", 600.0),
        ("burst (all at once)", 0.0),
    ):
        subs = poisson_stream(workflow, instances, mean_gap, seed=42)
        result = run_stream(subs, platform, policy="AllParExceed")
        rows.append(
            (
                label,
                result.total_cost,
                result.total_cost / instances,
                result.vm_count,
                result.mean_response,
                result.max_response,
            )
        )

    print(
        format_table(
            [
                "arrival pattern",
                "total $",
                "$/instance",
                "VMs",
                "mean response s",
                "max response s",
            ],
            rows,
            title=f"{instances}x MapReduce instances, AllParExceed, shared fleet",
        )
    )
    print(
        "\nStaggered arrivals reuse VMs still alive inside their BTU "
        "horizons, cutting the cost\nper instance; a simultaneous burst is "
        "the degenerate case — every instance finds\nevery VM busy, so "
        "reuse collapses and the fleet balloons."
    )


if __name__ == "__main__":
    main()
