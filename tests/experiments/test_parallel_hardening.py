"""Tests for the crash-tolerant sweep backend: per-cell error capture,
bounded retries, per-cell timeouts, and partial results."""

import time

import pytest

from repro.errors import ExperimentError
from repro.experiments.parallel import (
    CellFailure,
    cell_label,
    make_backend,
    map_guarded,
    run_cell,
)
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import paper_scenarios
from repro.experiments.config import paper_strategies, paper_workflows


def _boom(x):
    if x == "bad":
        raise ValueError("injected failure")
    return x.upper()


_CALLS = {}


def _flaky(x):
    """Fails on its first call per item, succeeds on the retry.

    Only usable with serial/thread backends (shared state).
    """
    n = _CALLS.get(x, 0)
    _CALLS[x] = n + 1
    if n == 0:
        raise RuntimeError("transient")
    return x


def _slow(x):
    if x == "hang":
        time.sleep(10.0)
    return x


class TestMapGuarded:
    def test_captures_errors_with_traceback(self):
        results, failures = map_guarded(
            make_backend("serial"), _boom, ["a", "bad", "c"]
        )
        assert results == ["A", None, "C"]
        assert len(failures) == 1
        f = failures[0]
        assert "ValueError: injected failure" in f.error
        assert "injected failure" in f.traceback
        assert f.attempts == 1
        assert "bad" in f.label

    def test_captures_across_process_pool(self):
        results, failures = map_guarded(
            make_backend("process", 2), _boom, ["a", "bad", "c"]
        )
        assert results == ["A", None, "C"]
        assert len(failures) == 1 and "ValueError" in failures[0].error

    def test_bounded_retry_recovers_transients(self):
        _CALLS.clear()
        results, failures = map_guarded(
            make_backend("serial"), _flaky, ["x", "y"], retries=1
        )
        assert results == ["x", "y"]
        assert failures == []

    def test_retry_budget_is_bounded(self):
        results, failures = map_guarded(
            make_backend("serial"), _boom, ["bad"], retries=2
        )
        assert results == [None]
        assert failures[0].attempts == 3

    def test_timeout_capture(self):
        results, failures = map_guarded(
            make_backend("serial"), _slow, ["ok", "hang"], timeout=0.5
        )
        assert results == ["ok", None]
        assert len(failures) == 1
        assert "TimeoutError" in failures[0].error
        assert failures[0].attempts == 1

    def test_parameters_validated(self):
        with pytest.raises(ExperimentError):
            map_guarded(make_backend("serial"), _boom, [], retries=-1)
        with pytest.raises(ExperimentError):
            map_guarded(make_backend("serial"), _boom, [], timeout=0.0)


def _sweep_kwargs(platform=None):
    """A minimal one-scenario, one-workflow, two-strategy grid."""
    from repro.cloud.platform import CloudPlatform

    platform = platform or CloudPlatform.ec2()
    wfs = paper_workflows()
    return dict(
        platform=platform,
        workflows={"montage": wfs["montage"], "sequential": wfs["sequential"]},
        scenarios=paper_scenarios(platform)[:1],
        strategies=paper_strategies()[:2],
    )


class _ExplodingWorkflow:
    """A workflow stand-in whose cell dies inside the worker."""

    name = "exploding"

    def __getattr__(self, item):
        raise RuntimeError("cell blew up")


class TestSweepHardening:
    def test_injected_crashing_cell_yields_partial_results(self):
        kwargs = _sweep_kwargs()
        kwargs["workflows"] = dict(kwargs["workflows"])
        kwargs["workflows"]["exploding"] = _ExplodingWorkflow()
        result = run_sweep(**kwargs)
        # the healthy cells are all present...
        scenario = result.scenarios()[0]
        assert set(result.workflows(scenario)) == {"montage", "sequential"}
        # ...and the dead cell is described, not fatal
        assert not result.complete
        assert len(result.failures) == 1
        assert "exploding" in result.failures[0].label
        assert "RuntimeError" in result.failures[0].error
        assert "exploding" in result.failure_summary()

    def test_on_error_raise_restores_fail_fast(self):
        kwargs = _sweep_kwargs()
        kwargs["workflows"] = {"exploding": _ExplodingWorkflow()}
        with pytest.raises(ExperimentError, match="cell"):
            run_sweep(on_error="raise", **kwargs)

    def test_on_error_validated(self):
        with pytest.raises(ExperimentError):
            run_sweep(on_error="ignore", **_sweep_kwargs())

    def test_clean_sweep_is_complete(self):
        result = run_sweep(**_sweep_kwargs())
        assert result.complete
        assert result.failure_summary() == ""

    def test_cell_label(self):
        import numpy as np

        from repro.cloud.platform import CloudPlatform
        from repro.experiments.parallel import SweepCell

        platform = CloudPlatform.ec2()
        cell = SweepCell(
            scenario=paper_scenarios(platform)[0],
            workflow_name="montage",
            shape=paper_workflows()["montage"],
            strategies=(),
            platform=platform,
            seed=np.random.SeedSequence(0),
        )
        assert cell_label(cell) == "pareto/montage"
