"""The immutable product of a scheduling run, with validation and cost
accounting.

A :class:`Schedule` is a set of :class:`~repro.cloud.vm.VM` objects whose
placements cover every workflow task exactly once.  It knows how to
check its own feasibility (dependencies, transfers, per-VM serialization)
and how to price itself (BTU rent + banded cross-region egress).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cloud.platform import CloudPlatform
from repro.cloud.vm import VM
from repro.errors import InvalidScheduleError
from repro.workflows.dag import Workflow

_EPS = 1e-6


@dataclass(frozen=True)
class Schedule:
    """A complete task-to-VM mapping with concrete times."""

    workflow: Workflow
    platform: CloudPlatform
    vms: List[VM]
    algorithm: str = ""
    provisioning: str = ""
    _task_vm: Dict[str, VM] = field(default_factory=dict, repr=False)
    _task_placement: Dict[str, object] = field(default_factory=dict, repr=False)
    #: feasibility memo — placements are immutable, so one successful
    #: :meth:`validate` holds for the schedule's lifetime
    _checked: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self._task_vm and self._task_placement:
            # pre-indexed by a fused kernel, which guarantees
            # exactly-once coverage by construction — skip the walk
            return
        mapping: Dict[str, VM] = {}
        placement: Dict[str, object] = {}
        for vm in self.vms:
            for p in vm.placements:
                if p.task_id in mapping:
                    raise InvalidScheduleError(
                        f"task {p.task_id!r} placed on both "
                        f"{mapping[p.task_id].name} and {vm.name}"
                    )
                mapping[p.task_id] = vm
                placement[p.task_id] = p
        missing = set(self.workflow.task_ids) - set(mapping)
        if missing:
            raise InvalidScheduleError(f"tasks never scheduled: {sorted(missing)}")
        extra = set(mapping) - set(self.workflow.task_ids)
        if extra:
            raise InvalidScheduleError(f"placements for unknown tasks: {sorted(extra)}")
        object.__setattr__(self, "_task_vm", mapping)
        object.__setattr__(self, "_task_placement", placement)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def vm_of(self, task_id: str) -> VM:
        try:
            return self._task_vm[task_id]
        except KeyError:
            raise InvalidScheduleError(f"unknown task {task_id!r}") from None

    def start(self, task_id: str) -> float:
        try:
            return self._task_placement[task_id].start
        except KeyError:
            raise InvalidScheduleError(f"unknown task {task_id!r}") from None

    def finish(self, task_id: str) -> float:
        try:
            return self._task_placement[task_id].end
        except KeyError:
            raise InvalidScheduleError(f"unknown task {task_id!r}") from None

    @property
    def label(self) -> str:
        if self.algorithm and self.provisioning:
            return f"{self.algorithm}+{self.provisioning}"
        return self.algorithm or self.provisioning or "schedule"

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Finish of the last task (workflows are released at t=0)."""
        return max(p.end for vm in self.vms for p in vm.placements)

    @property
    def vm_count(self) -> int:
        return len(self.vms)

    @property
    def total_btus(self) -> int:
        billing = self.platform.billing
        return sum(billing.btus(vm.uptime_seconds) for vm in self.vms)

    @property
    def rent_cost(self) -> float:
        billing = self.platform.billing
        return sum(vm.cost(billing) for vm in self.vms)

    def check_constraints(self, constraints) -> tuple:
        """Violations of *constraints* (a
        :class:`~repro.core.constraints.Constraints`) against this plan's
        makespan/cost/VM count; empty tuple means the plan is feasible.
        Realized (fault-/market-replayed) outcomes can still differ —
        the autotuner judges those, not the static plan.
        """
        return constraints.check(
            makespan=self.makespan,
            cost=self.total_cost,
            vm_count=self.vm_count,
        )

    def transfer_volumes(self) -> List[Tuple[str, str, float]]:
        """Cross-region edges as ``(src_region, dst_region, gb)``, in
        deterministic (parent, child) order."""
        out = []
        for u, v, gb in sorted(self.workflow.edges()):
            src, dst = self.vm_of(u), self.vm_of(v)
            if src is not dst and src.region.name != dst.region.name and gb > 0:
                out.append((src.region.name, dst.region.name, gb))
        return out

    @property
    def transfer_cost(self) -> float:
        """Banded egress cost over the schedule's cross-region volume.

        Volumes are accumulated per source region in deterministic edge
        order, so the free first GB is consumed consistently.
        """
        billing = self.platform.billing
        totals: Dict[str, float] = {}
        cost = 0.0
        for src_name, dst_name, gb in self.transfer_volumes():
            src = self.platform.region(src_name)
            dst = self.platform.region(dst_name)
            already = totals.get(src_name, 0.0)
            cost += billing.transfer_cost(gb, src, dst, monthly_total_gb=already)
            totals[src_name] = already + gb
        return cost

    @property
    def total_cost(self) -> float:
        return self.rent_cost + self.transfer_cost

    @property
    def total_idle_seconds(self) -> float:
        """Paid-but-unused VM time summed over all VMs (paper Fig. 5)."""
        billing = self.platform.billing
        return sum(vm.idle_seconds(billing) for vm in self.vms)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "Schedule":
        """Check full feasibility; raises :class:`InvalidScheduleError`.

        Verifies (a) per-VM non-overlap (also enforced at placement
        time), (b) every task starts no earlier than each predecessor's
        finish plus the platform transfer time, (c) durations equal the
        task work divided by the hosting instance's speed-up.

        Memoized: the object is immutable, so a second call returns
        immediately (the fused kernels pre-validate vectorially and set
        the memo themselves).
        """
        if self._checked:
            return self
        for vm in self.vms:
            ordered = sorted(vm.placements, key=lambda p: p.start)
            for a, b in zip(ordered, ordered[1:]):
                if a.end > b.start + _EPS:
                    raise InvalidScheduleError(
                        f"{vm.name}: {a.task_id!r} and {b.task_id!r} overlap"
                    )
            for p in vm.placements:
                expect = self.platform.runtime(self.workflow.task(p.task_id), vm.itype)
                if abs(p.duration - expect) > _EPS * max(1.0, expect):
                    raise InvalidScheduleError(
                        f"{vm.name}: {p.task_id!r} runs {p.duration:.6f}s, "
                        f"expected {expect:.6f}s on {vm.itype.name}"
                    )
        for u, v, gb in self.workflow.edges():
            src, dst = self.vm_of(u), self.vm_of(v)
            dt = self.platform.transfer_time(
                gb,
                src.itype,
                dst.itype,
                same_vm=src is dst,
                src_region=src.region,
                dst_region=dst.region,
            )
            if self.start(v) + _EPS < self.finish(u) + dt:
                raise InvalidScheduleError(
                    f"dependency violated: {v!r} starts at {self.start(v):.3f} "
                    f"but {u!r} finishes at {self.finish(u):.3f} + "
                    f"transfer {dt:.3f}"
                )
        object.__setattr__(self, "_checked", True)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Schedule({self.label}, vms={self.vm_count}, "
            f"makespan={self.makespan:.0f}s, cost=${self.total_cost:.2f})"
        )
