# Development entry points for the repro library.

PYTHON ?= python

.PHONY: install test lint check coverage bench bench-scaling bench-service \
  bench-pricing bench-tune bench-check profile profile-service report \
  artifacts examples faults-smoke service-smoke pricing-smoke tune-smoke clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Lint with ruff when it is installed (config in pyproject.toml); in
# environments without it, fall back to a byte-compile pass so `make
# check` still catches syntax errors instead of failing on the tool.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
	  $(PYTHON) -m ruff check src tests benchmarks examples; \
	elif command -v ruff >/dev/null 2>&1; then \
	  ruff check src tests benchmarks examples; \
	else \
	  echo "ruff not installed; falling back to compileall"; \
	  $(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

# The full gate: lint + the tier-1 suite + the perf-regression check.
check: lint
	PYTHONPATH=src $(PYTHON) -m pytest tests/
	$(MAKE) bench-check

# Line coverage when pytest-cov is installed; this container image
# does not bake it in, so fall back to running the suite plus a
# byte-compile pass over src so the target still proves every module
# at least parses.
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
	  PYTHONPATH=src $(PYTHON) -m pytest tests/ \
	    --cov=repro --cov-report=term-missing; \
	else \
	  echo "pytest-cov not installed; running suite + compileall instead"; \
	  PYTHONPATH=src $(PYTHON) -m pytest tests/ -q && \
	  $(PYTHON) -m compileall -q src; \
	fi

# Refreshes BENCH_sweep.json (serial vs parallel sweep baseline) so
# future PRs have a perf trajectory to compare against.
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_scheduler_performance.py --benchmark-only
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sweep.py

bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Refreshes BENCH_scaling.json: full pipeline at 1k/10k/50k tasks per
# provisioning family, with measured speedups vs the *Reference kernels.
bench-scaling:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scaling.py

# Refreshes BENCH_service.json: the WaaS service stress run at
# 1k/5k/10k workflows (best-of-3 at 1k) plus the scan-based reference
# fleet at 1k, appended to BENCH_history.jsonl.
bench-service:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py

# Refreshes BENCH_pricing.json: the 120-cell market-aware pricing
# sweep (best-of-3), appended to BENCH_history.jsonl.
bench-pricing:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pricing.py

# Refreshes BENCH_tune.json: the constraint-aware autotune search
# (best-of-3), appended to BENCH_history.jsonl.
bench-tune:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_tune.py

# Perf-regression gate: re-runs the small scaling sizes and fails when
# any cell is >25% slower than the committed BENCH_scaling.json, then
# gates the parallel sweep (serial/parallel identity always; process
# speedup only on multi-core hosts, where losing to serial means the
# shard-aware dispatch regressed).
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scaling.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sweep.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pricing.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py --check
	PYTHONPATH=src $(PYTHON) benchmarks/bench_tune.py --check

# cProfile one representative sweep cell plus the 50k columnar fused
# pipeline; top-25 cumulative entries go to artifacts/profile*.txt for
# before/after comparisons.
profile:
	mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) benchmarks/profile_cell.py --out artifacts/profile.txt
	PYTHONPATH=src $(PYTHON) benchmarks/profile_cell.py --columnar \
	  --out artifacts/profile_columnar.txt

# cProfile one seeded multi-tenant run_service cell (the WaaS hot path
# served by the indexed fleet kernels).
profile-service:
	mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) benchmarks/profile_cell.py --service \
	  --out artifacts/profile_service.txt

report:
	$(PYTHON) -m repro.experiments.cli all

artifacts:
	$(PYTHON) -m repro.experiments.cli export --out-dir artifacts

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

# Fast end-to-end check of the fault-injection pipeline: the five
# provisioning policies under a reduced fault grid, through the CLI.
faults-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli faults --quick \
	  --workflow montage --recovery retry

# Fast end-to-end check of the multi-tenant service mode: a quick
# seeded WaaS run (100 workflows, 10 tenants) through the CLI.
service-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli service --quick

# Fast end-to-end check of the spot-market pipeline: the five
# provisioning policies under a reduced price/boot grid, through the CLI.
pricing-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli pricing --quick \
	  --workflow montage

# Fast end-to-end check of the constraint-aware autotuner: a reduced
# search on montage under a deadline+budget bound, through the CLI.
tune-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli tune --quick \
	  --workflow montage --deadline 9000 --budget 15

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis \
	  benchmarks/artifacts artifacts
	find . -name __pycache__ -type d -exec rm -rf {} +
