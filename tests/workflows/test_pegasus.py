"""Tests for the Pegasus workflow-gallery generators."""

import pytest

from repro.errors import WorkflowError
from repro.workflows.analysis import profile
from repro.workflows.generators import cybershake, epigenomics, ligo, sipht


class TestEpigenomics:
    def test_task_count(self):
        # per lane: split + merge + 4*width; global: merge + index + pileup
        wf = epigenomics(lanes=2, width=4)
        assert len(wf) == 2 * (2 + 16) + 3

    def test_pipelined_chains(self):
        wf = epigenomics(lanes=1, width=2)
        assert wf.predecessors("sol2sanger_0_0") == ["filterContams_0_0"]
        assert wf.predecessors("map_0_1") == ["fastq2bfq_0_1"]

    def test_lane_merge_joins_all_chains(self):
        wf = epigenomics(lanes=1, width=3)
        assert wf.predecessors("mapMerge_0") == [f"map_0_{i}" for i in range(3)]

    def test_single_sink(self):
        assert epigenomics().exit_tasks() == ["pileup"]

    def test_width_bounded_parallelism(self):
        wf = epigenomics(lanes=2, width=4)
        assert wf.max_parallelism() == 8  # lanes * width

    def test_validation(self):
        with pytest.raises(WorkflowError):
            epigenomics(lanes=0)
        with pytest.raises(WorkflowError):
            epigenomics(width=0)


class TestCybershake:
    def test_task_count(self):
        # sites * (1 + 2*variations) + 2 zips
        wf = cybershake(sites=3, variations=2)
        assert len(wf) == 3 * 5 + 2

    def test_wide_and_shallow(self):
        p = profile(cybershake(sites=5, variations=5))
        # 25 peak-value tasks share a level with zipSeis
        assert p.max_width == 26
        assert p.levels == 4

    def test_zips_gather_everything(self):
        wf = cybershake(sites=2, variations=2)
        assert len(wf.predecessors("zipSeis")) == 4  # every seismogram
        assert len(wf.predecessors("zipPSA")) == 4  # every peak value

    def test_two_sinks(self):
        assert cybershake().exit_tasks() == ["zipPSA", "zipSeis"]

    def test_validation(self):
        with pytest.raises(WorkflowError):
            cybershake(sites=0)


class TestLigo:
    def test_task_count(self):
        # groups * (2*size + 3) + global thinca
        wf = ligo(groups=2, group_size=3)
        assert len(wf) == 2 * 9 + 1

    def test_group_structure(self):
        wf = ligo(groups=1, group_size=2)
        assert wf.predecessors("thinca_0") == ["inspiral_0_0", "inspiral_0_1"]
        assert wf.predecessors("inspiral2_0") == ["trigbank_0"]

    def test_single_sink(self):
        assert ligo().exit_tasks() == ["thinca2_global"]

    def test_groups_independent_until_final(self):
        wf = ligo(groups=2, group_size=2)
        assert "inspiral_1_0" not in wf.ancestors("thinca_0")

    def test_validation(self):
        with pytest.raises(WorkflowError):
            ligo(groups=0)


class TestSipht:
    def test_task_count(self):
        # patser_jobs + concat + 4 preps + srna + ffn + 4 blasts + annotate
        assert len(sipht(patser_jobs=8)) == 8 + 12

    def test_srna_is_the_bottleneck(self):
        wf = sipht()
        preds = wf.predecessors("srna")
        assert "patserConcate" in preds
        assert "transterm" in preds and "rnamotif" in preds

    def test_blasts_parallel_after_ffn(self):
        wf = sipht()
        for blast in ("blastSynteny", "blastParalogues", "blastQRNA", "blastSRNA"):
            assert wf.predecessors(blast) == ["ffnParse"]

    def test_single_sink(self):
        assert sipht().exit_tasks() == ["srnaAnnotate"]

    def test_validation(self):
        with pytest.raises(WorkflowError):
            sipht(patser_jobs=0)


class TestGalleryProperties:
    @pytest.mark.parametrize(
        "gen", [epigenomics, cybershake, ligo, sipht], ids=lambda g: g.__name__
    )
    def test_valid_dags_with_positive_work(self, gen):
        wf = gen()
        wf.validate()
        assert all(t.work > 0 for t in wf.tasks)
        assert all(gb >= 0 for _, _, gb in wf.edges())

    @pytest.mark.parametrize(
        "gen", [epigenomics, cybershake, ligo, sipht], ids=lambda g: g.__name__
    )
    def test_schedulable_by_every_policy(self, gen):
        from repro.cloud.platform import CloudPlatform
        from repro.core.allocation.heft import HeftScheduler
        from repro.core.allocation.level import AllParScheduler
        from repro.simulator.executor import simulate_schedule

        platform = CloudPlatform.ec2()
        wf = gen()
        for algo in (
            HeftScheduler("OneVMperTask"),
            HeftScheduler("StartParNotExceed"),
            AllParScheduler(exceed=True),
        ):
            sched = algo.schedule(wf, platform)
            sched.validate()
            simulate_schedule(sched, check=True)
