"""End-to-end tests of the fault-intensity experiment and its CLI."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.faults import (
    DEFAULT_INTENSITIES,
    FAULT_POLICY_LABELS,
    render_fault_sweep,
    run_fault_sweep,
)
from repro.simulator.faults import FaultPlan

#: small but non-trivial grid shared by the tests below
_QUICK = dict(intensities=(0.0, 1.0), fault_seeds=2)


@pytest.fixture(scope="module")
def sweep():
    return run_fault_sweep(**_QUICK)


class TestRunFaultSweep:
    def test_covers_the_five_policies(self, sweep):
        assert sweep.strategies() == list(FAULT_POLICY_LABELS)
        assert sweep.intensities() == [0.0, 1.0]
        # 5 policies x 2 intensities x 2 seeds
        assert len(sweep.cells) == 20
        assert sweep.complete

    def test_zero_intensity_matches_plan(self, sweep):
        for label in sweep.strategies():
            for cell in sweep.group(label, 0.0):
                assert cell.stats.failures == 0
                assert cell.makespan_delta == pytest.approx(0.0, abs=1e-6)
                assert cell.cost_delta == pytest.approx(0.0, abs=1e-9)

    def test_faults_fire_at_full_intensity(self, sweep):
        fired = sum(
            c.stats.failures
            for label in sweep.strategies()
            for c in sweep.group(label, 1.0)
        )
        assert fired > 0

    def test_reports_robustness_metrics(self, sweep):
        hit = [c for c in sweep.cells if c.stats.failures > 0]
        assert hit
        for cell in hit:
            assert cell.stats.wasted_btu_seconds >= 0
            assert cell.makespan >= cell.planned_makespan - 1e-6
            assert cell.cost > 0

    def test_parallel_matches_serial(self):
        serial = run_fault_sweep(**_QUICK)
        threaded = run_fault_sweep(backend="thread", jobs=2, **_QUICK)
        key = lambda c: (c.strategy, c.intensity, c.fault_seed)  # noqa: E731
        assert [
            (key(a), a.makespan, a.cost, a.stats.decisions)
            for a in serial.cells
        ] == [
            (key(b), b.makespan, b.cost, b.stats.decisions)
            for b in threaded.cells
        ]

    def test_unrecoverable_cells_are_captured(self):
        doomed = run_fault_sweep(
            base_plan=FaultPlan(task_fail_prob=0.97),
            intensities=(1.0,),
            fault_seeds=1,
            strategies=[_spec()],
            recovery="retry",
        )
        # with p=0.97 and 8 attempts some task exhausts its budget; the
        # sweep survives either way and reports the aborted cell
        assert len(doomed.cells) + len(doomed.failures) == 1
        if doomed.failures:
            assert "FaultError" in doomed.failures[0].error

    def test_axis_validation(self):
        with pytest.raises(ExperimentError):
            run_fault_sweep(intensities=(), fault_seeds=1)
        with pytest.raises(ExperimentError):
            run_fault_sweep(workflow_name="not-a-workflow")


def _spec():
    from repro.experiments.config import strategy

    return strategy("OneVMperTask-s")


class TestRenderFaultSweep:
    def test_table_lists_every_policy_and_intensity(self, sweep):
        text = render_fault_sweep(sweep)
        for label in FAULT_POLICY_LABELS:
            assert label in text
        for column in ("failures", "retries", "wasted BTU-s", "Δmakespan", "Δcost"):
            assert column in text

    def test_failures_appended(self):
        from repro.experiments.parallel import CellFailure
        from repro.experiments.faults import FaultSweepResult

        sweep = FaultSweepResult(
            recovery="retry",
            base_plan=FaultPlan(task_fail_prob=0.1),
            failures=[
                CellFailure(
                    label="X/montage@x1#s0",
                    error="FaultError: gave up",
                    traceback="",
                    attempts=1,
                )
            ],
        )
        text = render_fault_sweep(sweep)
        assert "unrecovered cells (1)" in text
        assert "FaultError" in text


class TestFaultsCli:
    def test_cli_faults_quick(self, capsys, tmp_path):
        out = tmp_path / "faults.txt"
        code = main(
            [
                "faults",
                "--quick",
                "--workflow",
                "montage",
                "--recovery",
                "replan",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "Fault-intensity sweep" in text
        assert "recovery=replan" in text
        for label in FAULT_POLICY_LABELS:
            assert label in text

    def test_cli_default_grid_is_sane(self):
        assert DEFAULT_INTENSITIES[0] == 0.0
        assert len(DEFAULT_INTENSITIES) >= 3
