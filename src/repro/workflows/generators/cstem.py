"""CSTEM workflow (paper Fig. 2b).

CSTEM (Coupled Structural/Thermal/Electromagnetic analysis, Dogan &
Ozguner) is the paper's CPU-intensive, "relatively sequential" shape:
one entry task, a mostly serial backbone with a few narrow fan-outs, and
several final (exit) tasks.  The published figure is not machine
readable, so this generator rebuilds the shape from those cited
properties (see DESIGN.md "Faithfulness notes"); the default instance
matches the paper's worked example in Fig. 1 — an initial task followed
by a 6-way fan-out — as its widest stage.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

_DATA_GB = 0.05  # CPU-intensive: small control/data files between stages


def cstem(fanout: int = 6, backbone: int = 5, finals: int = 3, name: str = "cstem") -> Workflow:
    """Build a CSTEM-like workflow.

    Parameters
    ----------
    fanout:
        Width of the single parallel stage right after the entry task
        (the Fig. 1 sub-workflow uses 6).
    backbone:
        Number of strictly sequential tasks after the fan-in.
    finals:
        Number of exit tasks forked from the end of the backbone
        ("several final tasks").
    """
    if fanout < 1 or backbone < 1 or finals < 1:
        raise WorkflowError("cstem stages must all be >= 1")
    wf = Workflow(name)

    entry = wf.add_task(Task("init", 800.0, "init"))
    stage = [
        wf.add_task(Task(f"solve_{i}", 1000.0 + 100.0 * i, "solve"))
        for i in range(fanout)
    ]
    for t in stage:
        wf.add_dependency(entry.id, t.id, _DATA_GB)

    # A narrow intermediate pair models the "few parallel tasks" beyond
    # the first fan-out: two couplers both need every solver output.
    couple_a = wf.add_task(Task("couple_a", 900.0, "couple"))
    couple_b = wf.add_task(Task("couple_b", 700.0, "couple"))
    for t in stage:
        wf.add_dependency(t.id, couple_a.id, _DATA_GB)
        wf.add_dependency(t.id, couple_b.id, _DATA_GB)

    prev = wf.add_task(Task("assemble", 1200.0, "assemble"))
    wf.add_dependency(couple_a.id, prev.id, _DATA_GB)
    wf.add_dependency(couple_b.id, prev.id, _DATA_GB)
    for i in range(backbone):
        nxt = wf.add_task(Task(f"iterate_{i}", 1000.0, "iterate"))
        wf.add_dependency(prev.id, nxt.id, _DATA_GB)
        prev = nxt

    for i in range(finals):
        out = wf.add_task(Task(f"report_{i}", 400.0 + 100.0 * i, "report"))
        wf.add_dependency(prev.id, out.id, _DATA_GB)
    return wf.validate()
