"""ASCII Gantt charts of schedules — the visual language of the paper's
Figure 1: one row per VM, ``#`` for execution, ``.`` for paid-but-idle
time, ``|`` marks at BTU boundaries.
"""

from __future__ import annotations

from typing import List

from repro.core.schedule import Schedule


def gantt(schedule: Schedule, width: int = 78, label_tasks: bool = True) -> str:
    """Render *schedule* as a per-VM timeline.

    Each row covers ``[0, horizon]`` where the horizon is the last paid
    BTU boundary of any VM; one character is ``horizon / width`` seconds.
    Task placements are drawn as runs of ``#`` (or the task id's first
    letters when *label_tasks* and the run is wide enough); the paid tail
    of each VM is ``.``; BTU boundaries inside the rent window are ``|``.
    """
    billing = schedule.platform.billing
    horizon = max(
        vm.rent_start + vm.paid_seconds(billing) for vm in schedule.vms
    )
    if horizon <= 0:
        return "(empty schedule)"
    scale = width / horizon

    def col(t: float) -> int:
        return min(width - 1, max(0, int(t * scale)))

    label_w = max(len(vm.name) for vm in schedule.vms)
    lines: List[str] = [
        f"{schedule.label}: makespan {schedule.makespan:,.0f}s, "
        f"cost ${schedule.total_cost:.2f}, idle {schedule.total_idle_seconds:,.0f}s"
    ]
    for vm in schedule.vms:
        row = [" "] * width
        paid_end = vm.rent_start + vm.paid_seconds(billing)
        for c in range(col(vm.rent_start), col(paid_end) + 1):
            row[c] = "."
        # BTU boundary ticks
        t = vm.rent_start + billing.btu_seconds
        while t < paid_end - 1e-9:
            row[col(t)] = "|"
            t += billing.btu_seconds
        for p in vm.placements:
            lo, hi = col(p.start), max(col(p.start), col(p.end) - 1)
            for c in range(lo, hi + 1):
                row[c] = "#"
            if label_tasks and hi - lo + 1 >= len(p.task_id) + 1:
                for i, ch in enumerate(p.task_id[: hi - lo]):
                    row[lo + i] = ch
        lines.append(f"{vm.name.ljust(label_w)} {''.join(row)}")
    lines.append(
        f"{' ' * label_w} 0{'-' * (width - len(f'{horizon:,.0f}s') - 2)}"
        f"{horizon:,.0f}s"
    )
    lines.append(f"{' ' * label_w} (# busy, . paid idle, | BTU boundary)")
    return "\n".join(lines)
