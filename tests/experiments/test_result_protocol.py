"""One result protocol: every experiment entry point returns a
ResultBase with ``summary()``/``to_json()``/``manifest``."""

import json

import pytest

import repro.api as api


def _sweep():
    return api.run_sweep(
        workflows={"sequential": api.sequential()},
        scenarios=[api.scenario("best")],
        strategies=[api.strategy("OneVMperTask-s")],
    )


def _fault_sweep():
    return api.run_fault_sweep(
        workflow=api.sequential(),
        workflow_name="sequential",
        strategies=[api.strategy("OneVMperTask-s")],
        intensities=[0.0],
        fault_seeds=1,
    )


def _pricing_sweep():
    return api.run_pricing_sweep(
        workflow=api.sequential(),
        workflow_name="sequential",
        strategies=[api.strategy("OneVMperTask-s")],
        scenarios=[api.price_scenario("on_demand")],
        boots=[b for b in api.paper_boot_settings() if b.name == "prebooted"],
        seeds=1,
    )


def _service():
    from repro.service.arrivals import poisson_arrivals

    requests = poisson_arrivals(
        api.sequential(), count=5, tenants=2, mean_interarrival=60.0, seed=3
    )
    return api.run_service(requests, api.CloudPlatform.ec2())


def _autotune():
    from repro.tune import TuneSpace

    return api.autotune(
        workflow=api.sequential(),
        space=TuneSpace(
            policies=("OneVMperTask",),
            flavors=("small",),
            reductions=("none",),
            recoveries=("retry",),
            purchases=("on_demand",),
        ),
        n_candidates=1,
    )


def _service_sweep():
    return api.run_service_sweep(
        policies=("StartParNotExceed",),
        admissions=("fifo",),
        seeds=1,
        count=5,
        tenants=2,
        shapes=("sequential",),
    )


FACTORIES = {
    "run_sweep": _sweep,
    "run_fault_sweep": _fault_sweep,
    "run_pricing_sweep": _pricing_sweep,
    "run_service": _service,
    "run_service_sweep": _service_sweep,
    "autotune": _autotune,
}


@pytest.fixture(scope="module", params=sorted(FACTORIES))
def result(request):
    return FACTORIES[request.param]()


class TestResultProtocol:
    def test_is_result_base(self, result):
        assert isinstance(result, api.ResultBase)

    def test_summary_renders(self, result):
        text = result.summary()
        assert isinstance(text, str) and text.strip()

    def test_to_json_is_json_stable(self, result):
        payload = result.to_json()
        assert isinstance(payload, dict)
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload

    def test_manifest_attachment(self, result):
        assert result.manifest is None
        manifest = {"artifact": "test", "seed": 0}
        assert result.with_manifest(manifest) is result
        assert result.manifest == manifest
        # reset so other tests of the module-scoped fixture see None-able state
        assert result.with_manifest(None) is result


class TestBaseContract:
    def test_base_methods_name_the_subclass(self):
        class Incomplete(api.ResultBase):
            pass

        r = Incomplete()
        with pytest.raises(NotImplementedError, match="Incomplete"):
            r.summary()
        with pytest.raises(NotImplementedError, match="Incomplete"):
            r.to_json()
