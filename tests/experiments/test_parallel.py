"""Parallel execution backends: resolution rules and the determinism
contract (parallel sweep/replicate results identical to serial)."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import paper_strategies, paper_workflows
from repro.experiments.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.experiments.replication import replicate
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import paper_scenarios, scenario


@pytest.fixture(scope="module")
def small_grid(platform):
    """A reduced grid: 2 workflows x 2 scenarios x 5 strategies.

    Includes the stochastic Pareto scenario (the RNG-spawning case the
    determinism contract is really about) and a deterministic one.
    """
    wfs = paper_workflows()
    scenarios = [s for s in paper_scenarios(platform) if s.name in ("pareto", "best")]
    strategies = [
        s
        for s in paper_strategies()
        if s.label
        in ("StartParNotExceed-s", "AllParExceed-m", "OneVMperTask-s", "CPA-Eager", "GAIN")
    ]
    return {
        "platform": platform,
        "workflows": {k: wfs[k] for k in ("montage", "sequential")},
        "scenarios": scenarios,
        "strategies": strategies,
    }


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
class TestMakeBackend:
    def test_default_is_serial(self):
        assert isinstance(make_backend(), SerialBackend)
        assert isinstance(make_backend(None, 1), SerialBackend)
        assert isinstance(make_backend(None, 0), SerialBackend)

    def test_jobs_above_one_defaults_to_process(self):
        backend = make_backend(None, 4)
        assert isinstance(backend, ProcessBackend)
        assert backend.jobs == 4

    def test_by_name(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", 2), ThreadBackend)
        assert isinstance(make_backend("process", 2), ProcessBackend)
        assert isinstance(make_backend("THREAD", 2), ThreadBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(3)
        assert make_backend(backend, 7) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ExperimentError, match="unknown backend"):
            make_backend("gpu")

    def test_invalid_jobs_raises(self):
        with pytest.raises(ExperimentError, match="jobs"):
            ThreadBackend(0)

    def test_describe(self):
        assert make_backend().describe() == "serial"
        assert make_backend("thread", 2).describe() == "thread(2)"


class TestBackendMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_preserves_input_order(self, backend):
        b = make_backend(backend, 4)
        assert b.map(abs, [-3, 1, -2, 0, 5]) == [3, 1, 2, 0, 5]

    def test_map_empty(self):
        assert make_backend("process", 2).map(abs, []) == []


# ----------------------------------------------------------------------
# the paper grid pickles (process-pool prerequisite)
# ----------------------------------------------------------------------
def test_paper_grid_is_picklable(platform):
    for sc in paper_scenarios(platform):
        pickle.loads(pickle.dumps(sc))
    for spec in paper_strategies():
        pickle.loads(pickle.dumps(spec))
    pickle.loads(pickle.dumps(platform))


# ----------------------------------------------------------------------
# determinism: parallel == serial, cell for cell, field for field
# ----------------------------------------------------------------------
def _metric_fields(sweep):
    """Flatten a SweepResult to {(scenario, wf, strategy): field dict}."""
    return {
        (sc, wf, label): dataclasses.asdict(m)
        for sc, wf, label, m in sweep.rows()
    }


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_sweep_identical_to_serial(small_grid, backend):
    serial = run_sweep(seed=7, **small_grid)
    parallel = run_sweep(seed=7, jobs=4, backend=backend, **small_grid)
    assert _metric_fields(parallel) == _metric_fields(serial)
    assert parallel.references == serial.references


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_replicate_identical_to_serial(small_grid, backend):
    kwargs = dict(
        platform=small_grid["platform"],
        workflows=small_grid["workflows"],
        strategies=small_grid["strategies"],
    )
    serial = replicate(range(3), **kwargs)
    parallel = replicate(range(3), jobs=3, backend=backend, **kwargs)
    assert set(parallel) == set(serial)
    for key in serial:
        assert dataclasses.asdict(parallel[key]) == dataclasses.asdict(serial[key])


def test_sweep_seed_still_controls_draws(small_grid):
    """Different seeds still give different Pareto cells when parallel."""
    a = run_sweep(seed=1, jobs=2, backend="thread", **small_grid)
    b = run_sweep(seed=2, jobs=2, backend="thread", **small_grid)
    assert _metric_fields(a) != _metric_fields(b)


def test_custom_unpicklable_strategy_works_on_threads(platform):
    """Lambda-built specs stay usable on the serial/thread backends."""
    from repro.core.allocation.heft import HeftScheduler
    from repro.experiments.config import StrategySpec

    spec = StrategySpec("custom", lambda: HeftScheduler("OneVMperTask"), "small")
    wfs = {"montage": paper_workflows()["montage"]}
    serial = run_sweep(
        platform=platform,
        workflows=wfs,
        scenarios=[scenario("pareto", platform)],
        strategies=[spec],
        seed=3,
    )
    threaded = run_sweep(
        platform=platform,
        workflows=wfs,
        scenarios=[scenario("pareto", platform)],
        strategies=[spec],
        seed=3,
        jobs=2,
        backend="thread",
    )
    assert _metric_fields(threaded) == _metric_fields(serial)


def test_backend_is_abstract():
    with pytest.raises(TypeError):
        ExecutionBackend()


# ----------------------------------------------------------------------
# shard-aware process dispatch
# ----------------------------------------------------------------------
class TestProcessDispatch:
    """The probe-based fallback: process(N) must never lose to serial on
    payloads too small (or hosts too narrow) to amortize a fork."""

    def test_small_payload_runs_in_parent(self):
        import os as _os

        backend = ProcessBackend(jobs=2)  # default threshold
        pids = backend.map(lambda _: _os.getpid(), range(8))
        assert pids == [_os.getpid()] * 8

    def test_high_threshold_forces_serial(self):
        import os as _os

        backend = ProcessBackend(jobs=2, min_parallel_seconds=1e9)
        pids = backend.map(lambda _: _os.getpid(), range(8))
        assert pids == [_os.getpid()] * 8

    def test_zero_threshold_forces_pool(self):
        # min_parallel_seconds=0 bypasses both the single-core guard and
        # the probe, so the pool path is exercised even on 1-cpu CI
        backend = ProcessBackend(jobs=2, min_parallel_seconds=0.0)
        assert backend.map(_square, range(20)) == [i * i for i in range(20)]

    def test_pool_path_preserves_order_and_matches_serial(self):
        items = list(range(37))
        forced = ProcessBackend(jobs=3, min_parallel_seconds=0.0)
        assert forced.map(_square, items) == SerialBackend().map(_square, items)

    def test_single_item_never_probes_a_pool(self):
        backend = ProcessBackend(jobs=4, min_parallel_seconds=0.0)
        assert backend.map(_square, [9]) == [81]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ExperimentError):
            ProcessBackend(jobs=2, min_parallel_seconds=-0.1)

    def test_describe_unchanged(self):
        assert ProcessBackend(jobs=2).describe() == "process(2)"


def _square(x):
    return x * x
