#!/usr/bin/env python
"""Adaptive scheduling — the paper's future-work direction, live.

Classifies each of the paper's four workflow shapes (plus a synthetic
fork-join), asks the Table-V selector for a strategy per user goal
(savings / gain / balance), runs the recommendation, and shows what it
actually delivered relative to the reference.

Run:  python examples/adaptive_scheduling.py
"""

from repro import (
    AdaptiveSelector,
    CloudPlatform,
    Goal,
    ParetoModel,
    apply_model,
    compare_to_reference,
    cstem,
    fork_join,
    mapreduce,
    montage,
    reference_schedule,
    sequential,
)
from repro.util.tables import format_table


def main() -> None:
    platform = CloudPlatform.ec2()
    selector = AdaptiveSelector(platform)

    shapes = {
        "montage": montage(),
        "cstem": cstem(),
        "mapreduce": mapreduce(),
        "sequential": sequential(),
        "fork_join(8x3)": fork_join(width=8, stages=3),
    }

    rows = []
    for name, shape in shapes.items():
        structure, profile = selector.classify(shape)
        # realistic heterogeneous runtimes (the paper's Pareto model)
        workflow = apply_model(shape, ParetoModel(), seed=2013)
        reference = reference_schedule(workflow, platform)
        for goal in (Goal.SAVINGS, Goal.GAIN, Goal.BALANCE):
            rec = selector.recommend(shape, goal)
            schedule = selector.schedule(workflow, goal)
            m = compare_to_reference(schedule, reference)
            rows.append(
                (
                    f"{name} / {goal.value}",
                    rec.label,
                    m.gain_pct,
                    m.savings_pct,
                    "yes" if m.in_target_square else "no",
                )
            )
        print(f"{name:16s} -> {structure.value}; tasks are {profile.value}")

    print()
    print(
        format_table(
            ["workflow / goal", "recommended", "gain %", "savings %", "in square"],
            rows,
            title="Table-V recommendations, measured (Pareto runtimes, seed 2013)",
        )
    )


if __name__ == "__main__":
    main()
