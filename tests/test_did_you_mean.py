"""Did-you-mean suggestions on every name registry in the library."""

import pytest

from repro.core.allocation.base import scheduling_algorithm
from repro.core.provisioning.base import provisioning_policy
from repro.core.recovery import recovery_policy
from repro.errors import ExperimentError, SchedulingError
from repro.experiments.config import strategy
from repro.experiments.parallel import make_backend
from repro.experiments.scenarios import scenario
from repro.util.suggest import closest, unknown_name_message


class TestSuggest:
    def test_closest_is_case_insensitive(self):
        assert closest("HEFT", ["heft", "gain"]) == "heft"

    def test_closest_none_when_nothing_plausible(self):
        assert closest("zzzzzz", ["heft", "gain"]) is None

    def test_message_with_and_without_hint(self):
        msg = unknown_name_message("backend", "threed", ["thread", "serial"])
        assert "unknown backend 'threed'" in msg
        assert "did you mean 'thread'?" in msg
        cold = unknown_name_message("backend", "qqqq", ["thread", "serial"])
        assert "did you mean" not in cold
        assert "['serial', 'thread']" in cold


class TestRegistries:
    def test_provisioning_policy(self):
        with pytest.raises(SchedulingError, match="did you mean 'StartParNotExceed'"):
            provisioning_policy("StartParNotExeed")

    def test_scheduling_algorithm(self):
        with pytest.raises(SchedulingError, match="did you mean"):
            scheduling_algorithm("heftt")

    def test_recovery_policy(self):
        with pytest.raises(Exception, match="did you mean 'retry'"):
            recovery_policy("retrry")

    def test_backend(self):
        with pytest.raises(ExperimentError, match="did you mean 'thread'"):
            make_backend("threed")

    def test_strategy_label(self):
        with pytest.raises(ExperimentError, match="did you mean 'GAIN'"):
            strategy("GAINN")

    def test_scenario(self):
        with pytest.raises(ExperimentError, match="did you mean 'pareto'"):
            scenario("paretto")
