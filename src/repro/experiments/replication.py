"""Multi-seed replication of the evaluation.

The paper reports one draw of its Pareto workload.  This module re-runs
a sweep over many seeds and aggregates each strategy's gain/loss with
bootstrap confidence intervals, so conclusions like "AllPar*-small
always saves" can be stated with uncertainty instead of from a single
sample — the statistical hardening a reproduction owes the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec, paper_strategies, paper_workflows
from repro.experiments.parallel import ExecutionBackend, make_backend
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.scenarios import Scenario, scenario
from repro.util.compat import removed_kwargs
from repro.util.rng import ensure_rng
from repro.util.tables import format_table
from repro.workflows.dag import Workflow


@dataclass(frozen=True)
class ReplicatedMetric:
    """One strategy's distribution over replicated sweeps."""

    label: str
    workflow: str
    gains: Sequence[float]
    losses: Sequence[float]

    @property
    def mean_gain(self) -> float:
        return float(np.mean(self.gains))

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.losses))

    def gain_ci(self, level: float = 0.95, resamples: int = 2000, seed: int = 0):
        return _bootstrap_ci(self.gains, level, resamples, seed)

    def loss_ci(self, level: float = 0.95, resamples: int = 2000, seed: int = 0):
        return _bootstrap_ci(self.losses, level, resamples, seed)

    @property
    def always_saves(self) -> bool:
        return max(self.losses) <= 1e-6

    @property
    def always_gains(self) -> bool:
        return min(self.gains) >= -1e-6


def _bootstrap_ci(values: Sequence[float], level: float, resamples: int, seed: int):
    """Percentile bootstrap CI of the mean."""
    if not 0 < level < 1:
        raise ExperimentError(f"CI level must be in (0, 1), got {level}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = ensure_rng(seed)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


@dataclass(frozen=True)
class _SeedJob:
    """One replication unit: a full single-scenario sweep at one seed."""

    seed: int
    platform: CloudPlatform
    workflows: Tuple[Tuple[str, Workflow], ...]
    strategies: Tuple[StrategySpec, ...]
    scenario: Scenario


def _run_seed(job: _SeedJob) -> SweepResult:
    """Worker entry point: each seed's sweep runs serially inside it."""
    return run_sweep(
        platform=job.platform,
        workflows=dict(job.workflows),
        scenarios=[job.scenario],
        strategies=list(job.strategies),
        seed=job.seed,
    )


@removed_kwargs(n_jobs="jobs", pool="backend")
def replicate(
    seeds: Iterable[int],
    platform: CloudPlatform | None = None,
    workflows: Mapping[str, Workflow] | None = None,
    strategies: List[StrategySpec] | None = None,
    scenario_name: str = "pareto",
    jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
) -> Dict[tuple, ReplicatedMetric]:
    """Run the Pareto sweep once per seed and aggregate.

    Returns ``{(workflow, strategy_label): ReplicatedMetric}``.

    ``jobs``/``backend`` fan the seeds out over an
    :class:`~repro.experiments.parallel.ExecutionBackend`; each seed's
    sweep is already independently seeded and the aggregation walks
    seeds in input order, so results match the serial run exactly.
    """
    seeds = list(seeds)
    if not seeds:
        raise ExperimentError("replicate needs at least one seed")
    platform = platform or CloudPlatform.ec2()
    workflows = workflows if workflows is not None else paper_workflows()
    strategies = strategies if strategies is not None else paper_strategies()
    sc: Scenario = scenario(scenario_name, platform)

    exec_backend = make_backend(backend, jobs)
    sweeps = exec_backend.map(
        _run_seed,
        [
            _SeedJob(
                seed=seed,
                platform=platform,
                workflows=tuple(workflows.items()),
                strategies=tuple(strategies),
                scenario=sc,
            )
            for seed in seeds
        ],
    )

    gains: Dict[tuple, List[float]] = {}
    losses: Dict[tuple, List[float]] = {}
    for sweep in sweeps:
        for wf_name in workflows:
            for spec in strategies:
                m = sweep.get(sc.name, wf_name, spec.label)
                key = (wf_name, spec.label)
                gains.setdefault(key, []).append(m.gain_pct)
                losses.setdefault(key, []).append(m.loss_pct)
    return {
        key: ReplicatedMetric(
            label=key[1], workflow=key[0], gains=tuple(gains[key]),
            losses=tuple(losses[key]),
        )
        for key in gains
    }


def render_replication(results: Dict[tuple, ReplicatedMetric]) -> str:
    rows = []
    for (wf, label), m in sorted(results.items()):
        glo, ghi = m.gain_ci()
        llo, lhi = m.loss_ci()
        rows.append(
            (
                f"{wf}/{label}",
                m.mean_gain,
                f"[{glo:.1f},{ghi:.1f}]",
                m.mean_loss,
                f"[{llo:.1f},{lhi:.1f}]",
            )
        )
    return format_table(
        ["cell", "mean gain %", "95% CI", "mean loss %", "95% CI"],
        rows,
        float_fmt=".1f",
        title=f"Replicated evaluation ({len(next(iter(results.values())).gains)} seeds)",
    )
