"""Smoke tests: every example script must run cleanly and produce its
headline output — examples are documentation and must never rot."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

_EXPECTED_MARKER = {
    "quickstart.py": "All schedules validated",
    "adaptive_scheduling.py": "Table-V recommendations",
    "mapreduce_scaling.py": "width sweep",
    "region_pricing.py": "Two-region pipeline",
    "dax_import.py": "DOT export",
    "deadline_scheduling.py": "SHEFT-style deadline",
    "gantt_walkthrough.py": "BTU boundary",
    "workflow_gallery.py": "savings advice",
    "trace_replay.py": "lower bounds",
    "instance_intensive.py": "shared fleet",
    "diagnose_schedule.py": "realized critical path",
}


@pytest.mark.parametrize("name", sorted(_EXPECTED_MARKER))
def test_example_runs(name):
    script = EXAMPLES / name
    assert script.exists(), f"example {name} missing"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert _EXPECTED_MARKER[name] in result.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(_EXPECTED_MARKER), (
        "examples and smoke-test markers out of sync"
    )
