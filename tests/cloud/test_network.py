"""Tests for the store-and-forward network model."""

import pytest

from repro.cloud.instance import LARGE, MEDIUM, SMALL, XLARGE
from repro.cloud.network import NetworkModel
from repro.errors import PlatformError


@pytest.fixture
def net() -> NetworkModel:
    return NetworkModel()


class TestTransferTime:
    def test_same_vm_free(self, net):
        assert net.transfer_time(100.0, SMALL, SMALL, same_vm=True) == 0.0

    def test_formula_size_over_bandwidth_plus_latency(self, net):
        # 1 GB over a 1 Gb/s link = 8 seconds + 0.1 s latency
        assert net.transfer_time(1.0, SMALL, SMALL) == pytest.approx(8.1)

    def test_bottleneck_link(self, net):
        """small (1 Gb) to large (10 Gb) runs at the slower 1 Gb."""
        assert net.bandwidth_gbps(SMALL, LARGE) == 1.0
        assert net.bandwidth_gbps(LARGE, XLARGE) == 10.0
        t_mixed = net.transfer_time(1.0, SMALL, LARGE)
        t_fast = net.transfer_time(1.0, LARGE, XLARGE)
        assert t_mixed == pytest.approx(8.1)
        assert t_fast == pytest.approx(0.9)

    def test_inter_region_latency(self, net):
        t_local = net.transfer_time(1.0, MEDIUM, MEDIUM, same_region=True)
        t_remote = net.transfer_time(1.0, MEDIUM, MEDIUM, same_region=False)
        assert t_remote - t_local == pytest.approx(0.4)

    def test_control_dependency_pays_latency(self, net):
        assert net.transfer_time(0.0, SMALL, SMALL) == pytest.approx(0.1)

    def test_negative_size(self, net):
        with pytest.raises(PlatformError):
            net.transfer_time(-1.0, SMALL, SMALL)

    def test_negative_latency_rejected(self):
        with pytest.raises(PlatformError):
            NetworkModel(intra_region_latency_s=-0.1)

    def test_monotone_in_size(self, net):
        assert net.transfer_time(2.0, SMALL, SMALL) > net.transfer_time(
            1.0, SMALL, SMALL
        )
