"""One-shot full evaluation report: every figure and table, as text."""

from __future__ import annotations

from repro.cloud.platform import CloudPlatform
from repro.experiments import figures, tables
from repro.experiments.runner import SweepResult, run_sweep


def full_report(
    sweep: SweepResult | None = None,
    seed: int = 2013,
    verify: bool = False,
) -> str:
    """Regenerate the paper's complete evaluation as one text report.

    Pass an existing *sweep* to avoid re-running it; otherwise a fresh
    default sweep (19 strategies x 4 workflows x 3 scenarios) runs.
    """
    platform = sweep.platform if sweep is not None else CloudPlatform.ec2()
    if sweep is None:
        sweep = run_sweep(platform=platform, seed=seed, verify=verify)
    from repro.experiments.pareto_front import render_pareto
    from repro.experiments.summary import render_run_counters, render_summary

    sections = [
        tables.render_table1(),
        tables.render_table2(platform),
        figures.render_figure1(platform),
        figures.render_figure2(),
        figures.render_figure3(),
        figures.render_figure4(sweep),
        figures.render_figure5(sweep),
        tables.render_table3(sweep),
        tables.render_table4(sweep),
        tables.render_table5(platform),
        render_summary(sweep),
        render_pareto(sweep),
    ]
    counters = render_run_counters(sweep)
    if counters:
        sections.append(counters)
    return "\n\n" + "\n\n\n".join(sections) + "\n"
