"""Tests for the best/worst boundary scenarios (paper Sect. IV-B)."""

import pytest

from repro.workloads.base import apply_model
from repro.workloads.uniform import BestCaseModel, ConstantModel, WorstCaseModel
from repro.workflows.generators import montage, sequential


class TestConstantModel:
    def test_every_task_equal(self):
        works = ConstantModel(123.0).runtimes(montage())
        assert set(works.values()) == {123.0}

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantModel(0.0)


class TestBestCaseModel:
    def test_paper_property_ne_le_btu(self):
        """n * e <= BTU: the whole workflow fits one BTU sequentially."""
        wf = montage()
        model = BestCaseModel(btu_seconds=3600.0)
        works = model.runtimes(wf)
        total = sum(works.values())
        assert total <= 3600.0 + 1e-9
        assert len(set(works.values())) == 1

    def test_slack(self):
        wf = sequential(10)
        works = BestCaseModel(btu_seconds=3600.0, slack=0.5).runtimes(wf)
        assert sum(works.values()) == pytest.approx(1800.0)

    def test_adapts_to_workflow_size(self):
        small_wf = sequential(2)
        big_wf = sequential(20)
        model = BestCaseModel()
        e_small = next(iter(model.runtimes(small_wf).values()))
        e_big = next(iter(model.runtimes(big_wf).values()))
        assert e_small == 10 * e_big

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BestCaseModel(btu_seconds=0)
        with pytest.raises(ValueError):
            BestCaseModel(slack=0.0)
        with pytest.raises(ValueError):
            BestCaseModel(slack=1.5)


class TestWorstCaseModel:
    def test_paper_property_exceeds_btu_even_on_fastest(self):
        """BTU < e / max_speedup: one task overruns a BTU on any VM."""
        model = WorstCaseModel(btu_seconds=3600.0, max_speedup=2.7, factor=2.8)
        works = model.runtimes(montage())
        e = next(iter(works.values()))
        assert e / 2.7 > 3600.0
        assert len(set(works.values())) == 1

    def test_factor_must_exceed_speedup(self):
        with pytest.raises(ValueError, match="exceed"):
            WorstCaseModel(factor=2.0, max_speedup=2.7)

    def test_apply(self):
        out = apply_model(montage(), WorstCaseModel())
        assert all(t.work == 2.8 * 3600.0 for t in out.tasks)
