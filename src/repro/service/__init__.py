"""repro.service — multi-tenant Workflow-as-a-Service simulation.

The paper evaluates provisioning/scheduling one workflow at a time.
This package turns the repo into a long-running simulated *service* in
the resource-sharing WaaS model of Hilman et al. (arXiv:1903.01113):

* a :class:`~repro.service.fleet.FleetManager` owns a long-lived VM
  fleet shared *across* workflow submissions (rent, reuse, idle-expiry
  at BTU boundaries, per-tenant billing attribution) — indexed with
  stamp-guarded lazy heaps (DESIGN.md §14) so placement-time fleet
  queries never scan the dead roster;
* an arrival stream (:mod:`repro.service.arrivals`) delivers workflow
  submissions from many tenants, Poisson- or trace-driven;
* admission policies (:mod:`repro.service.admission`) decide, per
  submission, admit / queue / reject — FIFO, per-tenant fair-share, or
  budget-guarded in the hard-constraint framing of Thai et al.
  (arXiv:1507.05470);
* the service loop (:mod:`repro.service.loop`) schedules each admitted
  workflow against the live fleet with the paper's five provisioning
  policies, via per-workflow online executors multiplexed onto one
  discrete-event simulator.

Everything is seed-deterministic: the same requests and seed produce
byte-identical metrics on every execution backend.

Exports resolve lazily (PEP 562): the online executor imports
``repro.service.fleet``, so an eager ``from .loop import ...`` here
would re-enter ``repro.simulator.online`` mid-initialisation.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "FleetManager": "repro.service.fleet",
    "FleetVM": "repro.service.fleet",
    "private_fleet": "repro.service.fleet",
    "OwnerBill": "repro.service.fleet",
    "FleetRollup": "repro.service.fleet",
    "WorkflowRequest": "repro.service.arrivals",
    "poisson_arrivals": "repro.service.arrivals",
    "trace_arrivals": "repro.service.arrivals",
    "AdmissionPolicy": "repro.service.admission",
    "ADMISSION_POLICIES": "repro.service.admission",
    "admission_policy": "repro.service.admission",
    "FifoAdmission": "repro.service.admission",
    "FairShareAdmission": "repro.service.admission",
    "BudgetGuardAdmission": "repro.service.admission",
    "WorkflowService": "repro.service.loop",
    "WorkflowReport": "repro.service.loop",
    "TenantReport": "repro.service.loop",
    "ServiceResult": "repro.service.loop",
    "run_service": "repro.service.loop",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
