"""Ablation: pre-booting vs cold starts.

The paper ignores boot time because static scheduling permits
pre-booting (Sect. IV-A, citing Mao & Humphrey's ~2 min constant EC2
boots).  This bench quantifies what that assumption is worth: under
cold starts every fresh VM delays its first task by 120 s, so
OneVMperTask (24 boots on Montage) loses far more makespan than
StartParExceed (6 boots, one per entry task).
"""

import pytest

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.experiments.scenarios import scenario
from repro.util.tables import format_table
from repro.workflows.generators import montage

BOOT = 120.0


def _study(warm_platform):
    cold_platform = CloudPlatform.ec2(boot_seconds=BOOT, prebooted=False)
    wf = scenario("pareto", warm_platform).apply(montage(), SWEEP_SEED)
    rows = {}
    for policy in ("OneVMperTask", "StartParNotExceed", "StartParExceed"):
        warm = HeftScheduler(policy).schedule(wf, warm_platform)
        cold = HeftScheduler(policy).schedule(wf, cold_platform)
        rows[policy] = {
            "warm_ms": warm.makespan,
            "cold_ms": cold.makespan,
            "penalty": cold.makespan - warm.makespan,
            "vms": cold.vm_count,
        }
    return rows


def test_boot_ablation(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    for policy, r in rows.items():
        # cold starts only ever delay
        assert r["penalty"] >= BOOT - 1e-6, policy
        # and by at most one boot per dependency-path VM
        assert r["penalty"] <= r["vms"] * BOOT + 1e-6

    # the one-VM-per-task extreme pays boots along its whole critical
    # path; the packed policy pays essentially one
    assert rows["OneVMperTask"]["penalty"] > rows["StartParExceed"]["penalty"]

    save_artifact(
        artifact_dir,
        "ablation_boot.txt",
        format_table(
            ["policy", "warm ms", "cold ms", "penalty s", "VMs"],
            [
                (p, r["warm_ms"], r["cold_ms"], r["penalty"], r["vms"])
                for p, r in rows.items()
            ],
            title=f"Pre-booting vs {BOOT:.0f}s cold starts (Montage, Pareto)",
        ),
    )
