"""Hypothesis properties of the online scheduling mode, across random
shapes, all five policies, and runtime noise."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.platform import CloudPlatform
from repro.simulator.online import run_online
from repro.simulator.perturb import lognormal_jitter
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import random_layered

_PLATFORM = CloudPlatform.ec2()
_POLICIES = (
    "OneVMperTask",
    "StartParNotExceed",
    "StartParExceed",
    "AllParNotExceed",
    "AllParExceed",
)


def _wf(seed):
    return apply_model(random_layered(layers=4, seed=seed), ParetoModel(), seed=seed)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_online_completes_and_respects_dependencies(seed):
    wf = _wf(seed)
    for policy in _POLICIES:
        result = run_online(wf, _PLATFORM, policy=policy)
        assert set(result.task_finish) == set(wf.task_ids)
        for u, v, _ in wf.edges():
            assert result.task_start[v] >= result.task_finish[u] - 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000), noise_seed=st.integers(0, 1000))
def test_online_feasible_under_noise(seed, noise_seed):
    wf = _wf(seed)
    result = run_online(
        wf,
        _PLATFORM,
        policy="StartParNotExceed",
        runtime_fn=lognormal_jitter(0.5, seed=noise_seed),
    )
    # per-VM serialization
    by_vm = {}
    for tid, vm in result.task_vm.items():
        by_vm.setdefault(vm, []).append(tid)
    for tasks in by_vm.values():
        spans = sorted((result.task_start[t], result.task_finish[t]) for t in tasks)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_online_accounting_consistent(seed):
    """Rent recomputes from realized VM windows; idle is non-negative
    and bounded by paid time."""
    wf = _wf(seed)
    for policy in ("OneVMperTask", "AllParExceed"):
        result = run_online(wf, _PLATFORM, policy=policy)
        # group realized spans per VM and recompute the bill from the
        # rent window: rented at the vm_start event (which may precede
        # the first task start by a transfer delay), released at the
        # vm_stop event or, if held to the end, at the last finish
        by_vm = {}
        for tid, vm in result.task_vm.items():
            by_vm.setdefault(f"vm{vm}", []).append(tid)
        rented = {e.vm: e.time for e in result.events if e.kind == "vm_start"}
        stopped = {e.vm: e.time for e in result.events if e.kind == "vm_stop"}
        rent = 0.0
        for vm, tasks in by_vm.items():
            start = rented[vm]
            end = stopped.get(vm, max(result.task_finish[t] for t in tasks))
            btus = max(1, math.ceil((end - start) / 3600.0 - 1e-9))
            rent += btus * 0.08
        assert result.rent_cost == pytest.approx(rent)
        assert 0 <= result.idle_seconds


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_online_deterministic_without_noise(seed):
    wf = _wf(seed)
    a = run_online(wf, _PLATFORM, policy="AllParNotExceed")
    b = run_online(wf, _PLATFORM, policy="AllParNotExceed")
    assert a.task_start == b.task_start
    assert a.task_vm == b.task_vm
    assert a.rent_cost == b.rent_cost
