"""Sweep runner: every strategy x workflow x scenario, against the
reference, with optional DES cross-validation of every schedule."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from repro.cloud.platform import CloudPlatform
from repro.core.baseline import reference_schedule
from repro.core.metrics import ScheduleMetrics, compare_to_reference
from repro.core.schedule import Schedule
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec, paper_strategies, paper_workflows
from repro.experiments.scenarios import Scenario, paper_scenarios
from repro.simulator.executor import simulate_schedule
from repro.util.rng import spawn_rngs
from repro.workflows.dag import Workflow


def run_strategy(
    spec: StrategySpec,
    workflow: Workflow,
    platform: CloudPlatform,
    reference: Schedule | None = None,
    verify: bool = False,
) -> ScheduleMetrics:
    """Run one strategy on one concrete workflow instance.

    With *verify*, the schedule is also replayed through the DES and its
    timings checked against the static plan.
    """
    sched = spec.run(workflow, platform)
    sched.validate()
    if verify:
        simulate_schedule(sched, check=True)
    ref = reference if reference is not None else reference_schedule(workflow, platform)
    return compare_to_reference(sched, ref, label=spec.label)


@dataclass
class SweepResult:
    """Results of a full sweep, indexed [scenario][workflow][strategy]."""

    platform: CloudPlatform
    metrics: Dict[str, Dict[str, Dict[str, ScheduleMetrics]]] = field(
        default_factory=dict
    )
    references: Dict[str, Dict[str, ScheduleMetrics]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def scenarios(self) -> List[str]:
        return list(self.metrics)

    def workflows(self, scenario: str) -> List[str]:
        return list(self.metrics[scenario])

    def get(self, scenario: str, workflow: str, strategy: str) -> ScheduleMetrics:
        try:
            return self.metrics[scenario][workflow][strategy]
        except KeyError:
            raise ExperimentError(
                f"no result for {scenario}/{workflow}/{strategy}"
            ) from None

    def strategies(self, scenario: str, workflow: str) -> List[str]:
        return list(self.metrics[scenario][workflow])

    def rows(self) -> List[tuple]:
        """Flat (scenario, workflow, strategy, metrics) rows."""
        out = []
        for sc, by_wf in self.metrics.items():
            for wf, by_strat in by_wf.items():
                for label, m in by_strat.items():
                    out.append((sc, wf, label, m))
        return out


def run_sweep(
    platform: CloudPlatform | None = None,
    workflows: Mapping[str, Workflow] | None = None,
    scenarios: Iterable[Scenario] | None = None,
    strategies: Iterable[StrategySpec] | None = None,
    seed: int = 2013,
    verify: bool = False,
) -> SweepResult:
    """Run the paper's full evaluation grid.

    The default arguments reproduce Figures 4-5 and Tables III-IV: four
    workflows x three scenarios x nineteen strategies, seeded so the
    Pareto draws are identical across strategies within one (scenario,
    workflow) cell.
    """
    platform = platform or CloudPlatform.ec2()
    workflows = workflows if workflows is not None else paper_workflows()
    scenarios = list(scenarios) if scenarios is not None else paper_scenarios(platform)
    strategies = (
        list(strategies) if strategies is not None else paper_strategies()
    )
    if not workflows or not scenarios or not strategies:
        raise ExperimentError("sweep needs at least one of each axis")

    result = SweepResult(platform=platform)
    rngs = spawn_rngs(seed, len(scenarios) * len(workflows))
    i = 0
    for sc in scenarios:
        result.metrics[sc.name] = {}
        result.references[sc.name] = {}
        for wf_name, shape in workflows.items():
            cell_seed = rngs[i]
            i += 1
            concrete = sc.apply(shape, cell_seed)
            ref = reference_schedule(concrete, platform)
            if verify:
                simulate_schedule(ref, check=True)
            result.references[sc.name][wf_name] = compare_to_reference(
                ref, ref, label="OneVMperTask-s (reference)"
            )
            row: Dict[str, ScheduleMetrics] = {}
            for spec in strategies:
                row[spec.label] = run_strategy(
                    spec, concrete, platform, reference=ref, verify=verify
                )
            result.metrics[sc.name][wf_name] = row
    return result
