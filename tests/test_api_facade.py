"""The repro.api facade: the blessed surface must exist, be documented
and keep pointing at the canonical implementations."""

import pydoc

import repro
import repro.api as api


class TestSurface:
    def test_all_names_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_help_renders_blessed_surface(self):
        # the acceptance check: `import repro.api as api; help(api)`
        text = pydoc.plain(pydoc.render_doc(api))
        for name in ("run_sweep", "simulate_schedule", "Tracer",
                     "MetricsRegistry", "load_manifest"):
            assert name in text
        assert "stable, supported surface" in text

    def test_reexports_are_the_canonical_objects(self):
        from repro.core.constraints import Constraints
        from repro.experiments import run_sweep, replicate
        from repro.experiments.faults import run_fault_sweep
        from repro.experiments.result import ResultBase
        from repro.simulator import simulate_schedule, run_online
        from repro.obs import Tracer, MetricsRegistry
        from repro.tune import autotune

        assert api.run_sweep is run_sweep
        assert api.replicate is replicate
        assert api.run_fault_sweep is run_fault_sweep
        assert api.simulate_schedule is simulate_schedule
        assert api.run_online is run_online
        assert api.Tracer is Tracer
        assert api.MetricsRegistry is MetricsRegistry
        assert api.autotune is autotune
        assert api.Constraints is Constraints
        assert api.ResultBase is ResultBase

    def test_tune_surface_is_blessed(self):
        for name in (
            "autotune",
            "Constraints",
            "ConstraintViolation",
            "Candidate",
            "CandidateOutcome",
            "TuneResult",
            "TuneSpace",
            "ResultBase",
        ):
            assert name in api.__all__, name

    def test_reachable_from_package_root(self):
        assert repro.api is api
        assert repro.obs.Tracer is api.Tracer

    def test_version_matches_package(self):
        assert api.__version__ == repro.__version__


class TestQuickstart:
    def test_readme_quickstart_runs_against_api_only(self):
        platform = api.CloudPlatform.ec2()
        sched = api.HeftScheduler("StartParNotExceed").schedule(
            api.montage(), platform, itype=platform.itype("medium")
        )
        sched.validate()
        api.simulate_schedule(sched)
        ref = api.reference_schedule(api.montage(), platform)
        m = api.compare_to_reference(sched, ref)
        assert m.vm_count >= 1
