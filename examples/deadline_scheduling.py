#!/usr/bin/env python
"""Deadline-constrained scheduling (the SHEFT idea from the paper's
related work) plus a robustness check.

Sweeps deadlines from loose to near the physical floor on a Pareto
Montage, shows how the SHEFT-style scheduler buys exactly as much speed
as the deadline needs, then perturbs the actual runtimes by 20% and
reports how often the deadline still holds.

Run:  python examples/deadline_scheduling.py
"""

from repro import (
    CloudPlatform,
    DeadlineScheduler,
    ParetoModel,
    apply_model,
    montage,
    reference_schedule,
    robustness_study,
)
from repro.util.tables import format_table


def main() -> None:
    platform = CloudPlatform.ec2()
    workflow = apply_model(montage(), ParetoModel(), seed=2013)
    reference = reference_schedule(workflow, platform)
    print(
        f"reference (OneVMperTask-small): makespan {reference.makespan:.0f} s, "
        f"cost ${reference.total_cost:.2f}"
    )
    _, cp = workflow.critical_path()
    print(f"physical floor (critical path on xlarge): {cp / 2.7:.0f} s\n")

    rows = []
    for factor in (1.2, 1.0, 0.8, 0.6, 0.5):
        deadline = reference.makespan * factor
        sched = DeadlineScheduler(deadline=deadline).schedule(workflow, platform)
        upgraded = sum(1 for vm in sched.vms if vm.itype.name != "small")
        # does the schedule survive 20% runtime noise?
        report = robustness_study(sched, rel_std=0.2, trials=50, seed=1)
        met = sum(1 for ms in report.realized_makespans if ms <= deadline)
        rows.append(
            (
                f"{factor:.1f}x ref",
                deadline,
                sched.makespan,
                sched.total_cost,
                upgraded,
                f"{met}/50",
            )
        )

    print(
        format_table(
            [
                "deadline",
                "deadline s",
                "planned s",
                "cost $",
                "upgraded VMs",
                "met under 20% noise",
            ],
            rows,
            title="SHEFT-style deadline scheduling on Montage (Pareto, seed 2013)",
        )
    )
    print(
        "\nTighter deadlines buy speed for exactly the tasks that need it; "
        "noise shows how much\nslack a deadline needs in practice (static "
        "plans sit right at the edge)."
    )


if __name__ == "__main__":
    main()
