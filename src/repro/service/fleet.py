"""Shared VM-fleet ownership: rent, reuse, idle-expiry, billing.

Historically every scheduling run owned its fleet privately — the
static :class:`~repro.core.builder.ScheduleBuilder` kept a ``vms`` list
and the online executor kept a ``fleet`` list, so VM state died with
the run.  A :class:`FleetManager` lifts that ownership out: it assigns
VM ids, stores the records, marks idle VMs dead at their BTU horizon,
and attributes rent to the tenant that requested each VM — so *many*
workflow executions (the WaaS service loop) can share one long-lived
fleet, while a run that builds its own private manager behaves exactly
as before.

The manager is deliberately mechanism, not policy: *which* VM a task
lands on stays with the provisioning policies; the manager only owns
the records and their lifecycle.  It imports nothing above the cloud
layer, so the static builder, the online executor and the service loop
can all depend on it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.cloud.billing import BillingModel
from repro.cloud.instance import InstanceType
from repro.cloud.region import Region
from repro.errors import SimulationError


@dataclass
class FleetVM:
    """One VM of a live (simulated) fleet.

    This is the record the online executor historically kept as its
    private ``_OnlineVM``; lifted here so a fleet can outlive any one
    workflow run.  ``owner`` names the tenant whose submission rented
    the VM — the attribution key for per-tenant billing.
    """

    id: int
    itype: InstanceType
    started_at: float
    free_at: float
    busy_seconds: float = 0.0
    tasks: List[str] = field(default_factory=list)
    levels: set = field(default_factory=set)
    finished_at: float = 0.0
    dead: bool = False
    crashed: bool = False
    crashed_at: float = 0.0
    #: seconds of completed executions (fault accounting)
    useful_seconds: float = 0.0
    #: tenant whose workflow rented this VM ("" for single-run fleets)
    owner: str = ""
    #: how the VM was bought (a market ``PurchaseOption``); ``None``
    #: outside market runs — fixed-price on-demand billing
    purchase: object | None = None
    #: whether the crash was a spot reclamation (price crossing)
    preempted: bool = False
    #: whether the acquisition hit the warm pool (cold-start scenarios)
    booted_warm: bool = False

    def horizon(self, btu: float) -> float:
        """End of the last started BTU — deprovision time when idle."""
        uptime = max(self.free_at - self.started_at, 1e-9)
        return self.started_at + math.ceil(uptime / btu - 1e-9) * btu


@dataclass(frozen=True)
class OwnerBill:
    """Realized rent attributed to one owner (tenant)."""

    owner: str
    vm_count: int
    btus: int
    rent_cost: float
    busy_seconds: float
    paid_seconds: float


class FleetManager:
    """Owns a fleet of :class:`FleetVM` records shared across runs.

    One manager may back a single online run (the executor builds a
    private one by default — byte-identical to the pre-lift behavior)
    or a whole service loop, where per-workflow executors rent from and
    reuse the same live fleet.

    The manager also acts as the rental *ledger* for static
    :class:`~repro.core.builder.ScheduleBuilder` runs: a builder
    constructed with ``fleet=manager`` reports every ``new_vm`` through
    :meth:`on_builder_rent`, so static planning (e.g. the budget-guard
    admission estimate) is accounted per owner without the builder
    giving up its local VM indexing.
    """

    def __init__(self, region: Region | None = None) -> None:
        self.region = region
        self.vms: List[FleetVM] = []
        #: executors (or any callables) notified when a VM crashes, so
        #: every run with work on the VM can recover its own tasks
        self._crash_listeners: List[Callable[[FleetVM], None]] = []
        #: notified at a spot reclamation *warning* (checkpoint hook)
        self._warning_listeners: List[Callable[[FleetVM], None]] = []
        #: warm-pool acquisitions consumed so far, by flavor name
        self.warm_used: Dict[str, int] = {}
        #: static-planning ledger: owner -> builder VM rentals
        self.static_rents: Dict[str, int] = {}
        #: the owner attributed builder rentals (and rentals made with
        #: no explicit owner); the service sets this around each run
        self.active_owner: str = ""

    # ------------------------------------------------------------------
    # live-fleet lifecycle
    # ------------------------------------------------------------------
    def rent(
        self,
        itype: InstanceType,
        started_at: float,
        free_at: float,
        owner: str | None = None,
        purchase: object | None = None,
    ) -> FleetVM:
        """Create the next VM record; ids are fleet-global and dense."""
        vm = FleetVM(
            id=len(self.vms),
            itype=itype,
            started_at=started_at,
            free_at=free_at,
            owner=self.active_owner if owner is None else owner,
            purchase=purchase,
        )
        self.vms.append(vm)
        return vm

    def take_warm(self, itype: InstanceType, pool: int) -> bool:
        """Claim one warm-pool slot for a new *itype* acquisition.

        The pool is fleet-global (the provider keeps a few instances
        warm per flavor): the first *pool* acquisitions of each flavor
        across *all* runs sharing this manager boot warm.  Returns
        whether the claim succeeded.
        """
        if pool <= 0:
            return False
        used = self.warm_used.get(itype.name, 0)
        if used >= pool:
            return False
        self.warm_used[itype.name] = used + 1
        return True

    def alive(self, owner: str | None = None) -> List[FleetVM]:
        """Living VMs in rental order; *owner* restricts to one tenant's
        rentals (tenant-scoped sharing)."""
        if owner is None:
            return [vm for vm in self.vms if not vm.dead]
        return [vm for vm in self.vms if not vm.dead and vm.owner == owner]

    def reap(self, now: float, btu: float) -> List[FleetVM]:
        """Mark VMs idle past their BTU horizon dead; returns the newly
        dead ones (callers record their own ``vm_stop`` events)."""
        reaped: List[FleetVM] = []
        for vm in self.vms:
            if not vm.dead and vm.free_at <= now and vm.horizon(btu) < now - 1e-9:
                vm.dead = True
                vm.finished_at = vm.free_at
                reaped.append(vm)
        return reaped

    def mark_crashed(self, vm: FleetVM, now: float) -> None:
        """Void a VM at *now*; reservations are reclaimed by listeners."""
        vm.crashed = True
        vm.dead = True
        vm.crashed_at = now
        vm.finished_at = now

    # ------------------------------------------------------------------
    # crash fan-out (shared fleets host tasks of many runs)
    # ------------------------------------------------------------------
    def add_crash_listener(self, listener: Callable[[FleetVM], None]) -> None:
        self._crash_listeners.append(listener)

    def notify_crash(self, vm: FleetVM) -> None:
        """Let every attached run reclaim its victims on *vm* (in
        attachment order, so recovery interleaving is deterministic)."""
        for listener in self._crash_listeners:
            listener(vm)

    def add_warning_listener(self, listener: Callable[[FleetVM], None]) -> None:
        self._warning_listeners.append(listener)

    def notify_warning(self, vm: FleetVM) -> None:
        """Fan a spot reclamation warning out to every attached run, so
        each can checkpoint its own work on *vm* before the kill."""
        for listener in self._warning_listeners:
            listener(vm)

    # ------------------------------------------------------------------
    # static-builder ledger
    # ------------------------------------------------------------------
    def on_builder_rent(self, builder, vm) -> None:
        """Record one static ``ScheduleBuilder.new_vm`` rental.

        Called by builders constructed with ``fleet=manager``; the VM
        record stays local to the builder (static schedules all start
        at t=0, so cross-run reuse is meaningless there), only the
        accounting is shared.
        """
        owner = self.active_owner
        self.static_rents[owner] = self.static_rents.get(owner, 0) + 1

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def uptime(self, vm: FleetVM) -> float:
        """Billable uptime: rent stops at the crash for crashed VMs."""
        end = vm.crashed_at if vm.crashed else vm.free_at
        return max(end - vm.started_at, 0.0)

    def bill(
        self,
        billing: BillingModel,
        region: Region | None = None,
        market: object | None = None,
        seed: int = 0,
    ) -> Dict[str, OwnerBill]:
        """Per-owner realized rent over the whole fleet.

        Each VM's cost goes to the tenant that rented it (reuse by
        another tenant's tasks extends ``busy_seconds`` but never moves
        the bill — the renter keeps the meter).  With a *market* (a
        :class:`~repro.market.spot.Market`), VMs carrying a purchase
        option are billed at the realized price integral under *seed*;
        all others keep the fixed-price arithmetic.
        """
        region = region or self.region
        if region is None:
            raise SimulationError("bill() needs a region (none configured)")
        rows: Dict[str, Dict[str, float]] = {}
        for vm in self.vms:
            up = self.uptime(vm)
            if market is not None and vm.purchase is not None:
                cost = market.vm_cost(
                    billing, seed, vm.started_at, up, vm.itype, region, vm.purchase
                )
            else:
                cost = billing.btus(up) * region.price(vm.itype)
            acc = rows.setdefault(
                vm.owner,
                {"vms": 0, "btus": 0, "cost": 0.0, "busy": 0.0, "paid": 0.0},
            )
            acc["vms"] += 1
            acc["btus"] += billing.btus(up)
            acc["cost"] += cost
            acc["busy"] += vm.busy_seconds
            acc["paid"] += billing.paid_seconds(up)
        return {
            owner: OwnerBill(
                owner=owner,
                vm_count=int(acc["vms"]),
                btus=int(acc["btus"]),
                rent_cost=acc["cost"],
                busy_seconds=acc["busy"],
                paid_seconds=acc["paid"],
            )
            for owner, acc in sorted(rows.items())
        }

    def utilization(self, billing: BillingModel) -> float:
        """Busy seconds over paid seconds across the fleet (0 when the
        fleet never rented anything)."""
        paid = sum(billing.paid_seconds(self.uptime(vm)) for vm in self.vms)
        if paid <= 0:
            return 0.0
        busy = sum(vm.busy_seconds for vm in self.vms)
        return busy / paid

    # ------------------------------------------------------------------
    # invariants (used by the test harness and the service loop)
    # ------------------------------------------------------------------
    def check_conservation(self) -> None:
        """Raise :class:`SimulationError` unless fleet bookkeeping is
        conserved: dense ids, crashed ⊆ dead, and no VM freed before it
        started."""
        for idx, vm in enumerate(self.vms):
            if vm.id != idx:
                raise SimulationError(f"fleet ids not dense: vm{vm.id} at slot {idx}")
            if vm.crashed and not vm.dead:
                raise SimulationError(f"vm{vm.id} crashed but not dead")
            if vm.free_at < vm.started_at - 1e-9:
                raise SimulationError(
                    f"vm{vm.id} freed at {vm.free_at} before start {vm.started_at}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        alive = sum(1 for vm in self.vms if not vm.dead)
        return f"FleetManager(vms={len(self.vms)}, alive={alive})"


#: the owner attributed to VMs rented outside any tenant context
DEFAULT_OWNER = ""


def private_fleet(region: Region | None = None) -> FleetManager:
    """A fresh single-run manager (the pre-lift behavior)."""
    return FleetManager(region=region)
