"""Realized critical paths and slack.

A schedule's makespan is determined by a concrete chain of *blocking*
events: each task on the chain started exactly when its binding
constraint released — either a same-VM predecessor freeing the machine
or a DAG predecessor's output arriving.  This module recovers that chain
(what to speed up) and each task's slack (how late it could have run
without moving the makespan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schedule import Schedule

_EPS = 1e-6


@dataclass(frozen=True)
class CriticalReport:
    """The blocking chain behind a schedule's makespan."""

    #: task ids from first to last; consecutive entries block each other
    path: Tuple[str, ...]
    #: why each non-initial element waited: "vm" (machine busy) or
    #: "dependency" (input arrival); aligned with path[1:]
    reasons: Tuple[str, ...]
    #: per-task slack: how much later the task could finish without
    #: increasing the makespan (0 for critical tasks)
    slack: Dict[str, float]

    @property
    def bottleneck_fraction_vm(self) -> float:
        """Share of blocking hops caused by machine contention rather
        than DAG dependencies — high values mean the provisioning (not
        the workflow) limits the makespan."""
        if not self.reasons:
            return 0.0
        return sum(1 for r in self.reasons if r == "vm") / len(self.reasons)


def realized_critical_path(schedule: Schedule) -> CriticalReport:
    """Trace the blocking chain back from the last-finishing task."""
    wf, platform = schedule.workflow, schedule.platform
    finish = {tid: schedule.finish(tid) for tid in wf.task_ids}
    start = {tid: schedule.start(tid) for tid in wf.task_ids}

    def blocker(tid: str) -> Tuple[str, str] | None:
        """(blocking task, reason) whose release time equals start."""
        vm = schedule.vm_of(tid)
        # same-VM predecessor ending exactly at our start
        prev = None
        for p in vm.placements:
            if p.end <= start[tid] + _EPS and p.task_id != tid:
                if prev is None or p.end > prev.end:
                    prev = p
        if prev is not None and abs(prev.end - start[tid]) <= _EPS:
            return prev.task_id, "vm"
        best = None
        for pred in wf.predecessors(tid):
            src = schedule.vm_of(pred)
            dt = platform.transfer_time(
                wf.data_gb(pred, tid),
                src.itype,
                vm.itype,
                same_vm=src is vm,
                src_region=src.region,
                dst_region=vm.region,
            )
            arrival = finish[pred] + dt
            if best is None or arrival > best[1]:
                best = (pred, arrival)
        if best is not None and abs(best[1] - start[tid]) <= _EPS:
            return best[0], "dependency"
        return None  # started at release (t=0 entry or boot boundary)

    last = max(finish, key=lambda t: (finish[t], t))
    path: List[str] = [last]
    reasons: List[str] = []
    while True:
        blk = blocker(path[-1])
        if blk is None:
            break
        path.append(blk[0])
        reasons.append(blk[1])
    path.reverse()
    reasons.reverse()

    makespan = schedule.makespan
    # Backward slack needs an order respecting BOTH the DAG and the
    # same-VM execution sequences (extra precedence the DAG lacks).
    import networkx as nx

    combined = nx.DiGraph()
    combined.add_nodes_from(wf.task_ids)
    for u, v, _gb in wf.edges():
        combined.add_edge(u, v)
    vm_next: Dict[str, str] = {}
    for vm in schedule.vms:
        ordered = sorted(vm.placements, key=lambda p: p.start)
        for a, b in zip(ordered, ordered[1:]):
            combined.add_edge(a.task_id, b.task_id)
            vm_next[a.task_id] = b.task_id

    latest: Dict[str, float] = {}
    for tid in reversed(list(nx.topological_sort(combined))):
        vm = schedule.vm_of(tid)
        bound = makespan
        for succ in wf.successors(tid):
            dst = schedule.vm_of(succ)
            dt = platform.transfer_time(
                wf.data_gb(tid, succ),
                vm.itype,
                dst.itype,
                same_vm=vm is dst,
                src_region=vm.region,
                dst_region=dst.region,
            )
            bound = min(bound, latest[succ] - (finish[succ] - start[succ]) - dt)
        nxt = vm_next.get(tid)
        if nxt is not None:
            bound = min(bound, latest[nxt] - (finish[nxt] - start[nxt]))
        latest[tid] = bound
    slack = {tid: max(0.0, latest[tid] - finish[tid]) for tid in wf.task_ids}
    return CriticalReport(path=tuple(path), reasons=tuple(reasons), slack=slack)
