"""Future work, executed: the paper's Sect. VI proposes refining the
Table V classification with "custom workflows ... from different
workloads".  This bench runs the full 19-strategy grid over the wider
Pegasus gallery (Epigenomics, CyberShake, LIGO, SIPHT) under Pareto
runtimes, classifies each cell as in Table III, and checks the paper's
cross-workflow conclusions transfer: AllPar1LnSDyn keeps saving, the
dynamic upgraders stay within their budget-bounded loss, and small
AllPar provisioning never loses money."""

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.cloud.platform import CloudPlatform
from repro.core.adaptive import Goal, recommend
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario
from repro.experiments.tables import classify_cell, render_table3
from repro.workflows.generators import cybershake, epigenomics, ligo, sipht

GALLERY = {
    "epigenomics": epigenomics(),
    "cybershake": cybershake(),
    "ligo": ligo(),
    "sipht": sipht(),
}


def _sweep(platform):
    return run_sweep(
        platform=platform,
        workflows=GALLERY,
        scenarios=[scenario("pareto", platform)],
        seed=SWEEP_SEED,
    )


def test_gallery_classification(benchmark, platform, artifact_dir):
    sweep = benchmark(_sweep, platform)

    for wf_name in GALLERY:
        cell = sweep.metrics["pareto"][wf_name]

        # Table IV's small-instance guarantee generalizes
        for label in ("AllParExceed-s", "AllParNotExceed-s"):
            assert cell[label].loss_pct <= 1e-6, (wf_name, label)

        # parallelism reduction keeps saving on every shape
        for label in ("AllPar1LnS", "AllPar1LnSDyn"):
            assert cell[label].savings_pct >= -1e-6, (wf_name, label)

        # the dynamic upgraders stay inside their 2x budget band
        for label in ("GAIN", "CPA-Eager"):
            assert cell[label].loss_pct <= 100.0 + 1e-6
            assert cell[label].gain_pct > 0

        # the adaptive selector's savings advice holds on unseen shapes
        rec = recommend(GALLERY[wf_name], platform, Goal.SAVINGS)
        if rec.label in cell:
            assert cell[rec.label].savings_pct >= -1e-6, (wf_name, rec.label)

        # someone always beats the reference on cost (elasticity pays)
        cls = classify_cell(cell)
        assert cls.savings_dominant or cls.balanced, wf_name

    save_artifact(artifact_dir, "futurework_gallery.txt", render_table3(sweep))
