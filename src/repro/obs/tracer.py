"""Structured tracing: spans, instants and counter samples.

A :class:`Tracer` collects timestamped events during a run — wall-clock
spans around host computations (scheduling a strategy, replaying a
cell), simulated-time spans for what the discrete-event executors
observe (one span per task execution, one per VM rent window), and
counter samples — and serializes them as JSONL or the Chrome
``trace_event`` format, so any run opens directly in
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_.

Overhead contract
-----------------
Tracing must cost *nothing* when disabled.  Every instrumented site
holds a tracer reference that defaults to the module-level
:data:`NULL_TRACER` singleton, whose ``enabled`` flag is ``False`` and
whose methods are no-ops; hot paths guard their emission behind a single
``if tracer.enabled:`` branch.  ``make bench-check`` runs with tracing
disabled and must show no measurable regression.

Timestamps
----------
Chrome traces are unit-µs.  Wall-clock spans (``span``) use
``time.perf_counter`` relative to the tracer's epoch.  Simulated-time
events (``complete``/``instant``/``counter`` with an explicit ``ts``)
map one simulated second to one trace millisecond (``ts * 1e3`` µs), so
simulation timelines stay readable next to wall timelines; the two kinds
are kept apart by track (``tid``) and category.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, List, Optional

#: trace µs per simulated second (1 sim second -> 1 trace ms)
SIM_US = 1e3
#: trace µs per wall second
WALL_US = 1e6


class Tracer:
    """Collects trace events for one run (not thread-safe; use one
    tracer per worker and :meth:`adopt` to merge)."""

    #: hot paths guard emission on this flag — ``False`` only on the
    #: :class:`NullTracer`
    enabled: bool = True

    def __init__(self, pid: int = 0, clock=time.perf_counter) -> None:
        self.pid = pid
        self._clock = clock
        self._epoch = clock()
        self.events: List[dict] = []
        self._next_pid = pid + 1
        self._next_run = 0

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _wall_us(self) -> float:
        return (self._clock() - self._epoch) * WALL_US

    def next_run(self) -> int:
        """A fresh track-namespace index.

        Each simulated replay prefixes its per-VM track names with one
        of these, so sim-time spans from successive replays land on
        distinct ``tid`` tracks instead of partially overlapping on a
        shared ``vm0`` track (which the nesting check would reject).
        """
        self._next_run += 1
        return self._next_run

    @contextmanager
    def span(self, name: str, cat: str = "wall", tid: str = "main", **args):
        """Wall-clock span around a block of host work."""
        start = self._wall_us()
        try:
            yield self
        finally:
            self.events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": start,
                    "dur": self._wall_us() - start,
                    "pid": self.pid,
                    "tid": tid,
                    "cat": cat,
                    "args": args,
                }
            )

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        tid: str = "sim",
        cat: str = "sim",
        **args,
    ) -> None:
        """Span with explicit simulated-time bounds (seconds)."""
        self.events.append(
            {
                "name": name,
                "ph": "X",
                "ts": ts * SIM_US,
                "dur": dur * SIM_US,
                "pid": self.pid,
                "tid": tid,
                "cat": cat,
                "args": args,
            }
        )

    def instant(
        self,
        name: str,
        ts: float | None = None,
        tid: str = "main",
        cat: str = "wall",
        **args,
    ) -> None:
        """Point event, at simulated *ts* seconds or wall now."""
        self.events.append(
            {
                "name": name,
                "ph": "i",
                "s": "t",
                "ts": self._wall_us() if ts is None else ts * SIM_US,
                "pid": self.pid,
                "tid": tid,
                "cat": cat,
                "args": args,
            }
        )

    def counter(
        self, name: str, value: float, ts: float | None = None, tid: str = "counters"
    ) -> None:
        """Counter sample (rendered as a stacked chart track)."""
        self.events.append(
            {
                "name": name,
                "ph": "C",
                "ts": self._wall_us() if ts is None else ts * SIM_US,
                "pid": self.pid,
                "tid": tid,
                "cat": "counter",
                "args": {"value": value},
            }
        )

    def gauge(self, name: str, value: float, ts: float | None = None) -> None:
        """Alias of :meth:`counter` for point-in-time measurements."""
        self.counter(name, value, ts=ts)

    # ------------------------------------------------------------------
    # merging (per-cell traces from parallel backends)
    # ------------------------------------------------------------------
    def adopt(self, events: Iterable[dict], label: str = "") -> int:
        """Merge a worker's event list as its own trace process.

        Events produced by a per-cell tracer (serial, thread or process
        backend — plain dicts travel through pickling unchanged) are
        re-homed under a fresh ``pid``; *label* becomes the process name
        shown by the viewer.  Returns the assigned pid.
        """
        pid = self._next_pid
        self._next_pid += 1
        if label:
            self.events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": "main",
                    "cat": "__metadata",
                    "args": {"name": label},
                }
            )
        n = 0
        for ev in events:
            ev = dict(ev)
            ev["pid"] = pid
            self.events.append(ev)
            n += 1
        return n

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` JSON object."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write_chrome(self, path: str | Path) -> Path:
        """Write the Chrome-format trace; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=None, sort_keys=True))
        return path

    def write_jsonl(self, path: str | Path) -> Path:
        """Write one JSON event per line; returns the path."""
        path = Path(path)
        with path.open("w") as fh:
            for ev in self.events:
                fh.write(json.dumps(ev, sort_keys=True) + "\n")
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(events={len(self.events)})"


class _NullSpan:
    """Reusable no-op context manager for the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is shared by
    every un-traced run, so "is tracing on?" is one attribute read.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self.events = []

    def span(self, name, cat="wall", tid="main", **args):  # noqa: D102
        return _NULL_SPAN

    def complete(self, *a, **kw) -> None:  # noqa: D102
        pass

    def instant(self, *a, **kw) -> None:  # noqa: D102
        pass

    def counter(self, *a, **kw) -> None:  # noqa: D102
        pass

    def adopt(self, events, label="") -> int:  # noqa: D102
        return 0

    def next_run(self) -> int:  # noqa: D102
        return 0


#: the shared disabled tracer — instrumented code defaults to this
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Normalize an optional tracer argument to a usable instance."""
    return NULL_TRACER if tracer is None else tracer


def validate_chrome_trace(data: dict) -> List[dict]:
    """Structurally validate a Chrome ``trace_event`` object.

    Checks the ``traceEvents`` envelope, per-event required fields, and
    that complete ("X") spans nest consistently per (pid, tid) track:
    two spans on one track either nest or are disjoint — never partially
    overlap.  Returns the event list; raises ``ValueError`` otherwise.
    Used by the test suite and by ``--trace`` consumers as a load check.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    tracks: Dict[tuple, List[tuple]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"event {i} ({ev.get('name')!r}) lacks {field!r}")
        if ev["ph"] == "X":
            if "dur" not in ev or ev["dur"] < 0:
                raise ValueError(f"complete event {i} needs a non-negative 'dur'")
            tracks.setdefault((ev["pid"], ev["tid"]), []).append(
                (float(ev["ts"]), float(ev["ts"]) + float(ev["dur"]), ev["name"])
            )
    eps = 1e-6
    for track, spans in tracks.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: List[tuple] = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start + eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                raise ValueError(
                    f"span {name!r} on track {track} partially overlaps "
                    f"{stack[-1][2]!r}"
                )
            stack.append((start, end, name))
    return events
