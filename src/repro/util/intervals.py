"""Closed-open time-interval algebra.

Used by the VM model and the schedule validator: a VM's busy time is a
set of non-overlapping ``[start, end)`` intervals, its idle time is the
gap between its paid span and that busy set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True, order=True)
class Interval:
    """A closed-open time interval ``[start, end)`` in seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isnan(self.end):
            raise ValueError("interval bounds must not be NaN")
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} < start {self.start}")

    @property
    def length(self) -> float:
        return self.end - self.start

    @property
    def empty(self) -> bool:
        return self.end == self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share a region of positive length."""
        return self.start < other.end and other.start < self.end

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi <= lo:
            return None
        return Interval(lo, hi)

    def shifted(self, dt: float) -> "Interval":
        return Interval(self.start + dt, self.end + dt)


class IntervalSet:
    """A set of disjoint, sorted intervals with union/gap queries.

    Intervals are merged on insertion when they touch or overlap, so the
    internal representation is always canonical.
    """

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: List[Interval] = []
        for iv in intervals:
            self.add(iv)

    def add(self, interval: Interval) -> None:
        """Insert *interval*, merging with any touching/overlapping ones."""
        if interval.empty:
            return
        if self._intervals and interval.start > self._intervals[-1].end:
            # past every existing end (strictly, so touching still
            # merges below): append without the O(n) merge scan — the
            # common case when building a set in chronological order
            self._intervals.append(interval)
            return
        merged_start, merged_end = interval.start, interval.end
        keep: List[Interval] = []
        for iv in self._intervals:
            if iv.end < merged_start or iv.start > merged_end:
                keep.append(iv)
            else:
                merged_start = min(merged_start, iv.start)
                merged_end = max(merged_end, iv.end)
        keep.append(Interval(merged_start, merged_end))
        keep.sort()
        self._intervals = keep

    def add_disjoint(self, interval: Interval) -> None:
        """Insert *interval*, raising if it overlaps an existing one.

        Touching intervals (``a.end == b.start``) are allowed and merged.
        """
        for iv in self._intervals:
            if iv.overlaps(interval):
                raise ValueError(f"{interval} overlaps existing {iv}")
        self.add(interval)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    @property
    def total_length(self) -> float:
        return sum(iv.length for iv in self._intervals)

    @property
    def span(self) -> Interval:
        """Smallest single interval covering the whole set."""
        if not self._intervals:
            return Interval(0.0, 0.0)
        return Interval(self._intervals[0].start, self._intervals[-1].end)

    def gaps(self) -> List[Interval]:
        """Maximal empty intervals strictly between members of the set."""
        out: List[Interval] = []
        for prev, nxt in zip(self._intervals, self._intervals[1:]):
            if nxt.start > prev.end:
                out.append(Interval(prev.end, nxt.start))
        return out

    def covers(self, t: float) -> bool:
        return any(iv.contains(t) for iv in self._intervals)

    def first_fit(self, earliest: float, duration: float) -> float:
        """Earliest time ``>= earliest`` at which a block of *duration*
        seconds fits without overlapping the set.

        Useful for insertion-based scheduling variants.
        """
        if duration < 0:
            raise ValueError("duration must be >= 0")
        t = earliest
        for iv in self._intervals:
            if iv.end <= t:
                continue
            if iv.start >= t + duration:
                break
            t = iv.end
        return t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"[{iv.start:g},{iv.end:g})" for iv in self._intervals)
        return f"IntervalSet({parts})"
