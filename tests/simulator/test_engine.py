"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import Simulator


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.at(2.0, lambda: times.append(sim.now))
        sim.at(5.0, lambda: times.append(sim.now))
        end = sim.run()
        assert times == [2.0, 5.0]
        assert end == 5.0

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []

        def first():
            sim.after(3.0, lambda: seen.append(sim.now))

        sim.at(1.0, first)
        sim.run()
        assert seen == [4.0]

    def test_chained_events(self):
        """Events scheduled during processing run in the same pass."""
        sim = Simulator()
        hops = []

        def hop(n):
            hops.append((sim.now, n))
            if n < 3:
                sim.after(1.0, lambda: hop(n + 1))

        sim.at(0.0, lambda: hop(0))
        sim.run()
        assert hops == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_past_event_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: sim.at(1.0, lambda: None))
        with pytest.raises(SimulationError, match="clock"):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_event_budget(self):
        sim = Simulator(max_events=10)

        def forever():
            sim.after(1.0, forever)

        sim.at(0.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            sim.run()

    def test_event_budget_error_names_last_event(self):
        """Exhaustion reports the label and timestamp of the event that
        crossed the budget, so a runaway loop is debuggable."""
        sim = Simulator(max_events=3)

        def forever():
            sim.after(2.5, forever, "spin")

        sim.at(0.0, forever, "spin")
        with pytest.raises(SimulationError) as exc_info:
            sim.run()
        message = str(exc_info.value)
        assert "3 events" in message
        assert "'spin'" in message
        # events fire at t = 0, 2.5, 5, 7.5; the 4th breaks the budget
        assert "t=7.5" in message

    def test_processed_events_counted(self):
        sim = Simulator()
        for i in range(4):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_not_reentrant(self):
        sim = Simulator()
        sim.at(0.0, lambda: sim.run())
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()

    def test_invalid_budget(self):
        with pytest.raises(SimulationError):
            Simulator(max_events=0)
