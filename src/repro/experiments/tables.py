"""Regenerators for the paper's tables.

Table I and II are static inputs (reproduced for completeness); Tables
III-V are derived from a sweep: the gain/savings classification, the
AllPar[Not]Exceed fluctuation study, and the conclusions matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cloud.platform import CloudPlatform
from repro.core.adaptive import Goal, recommend
from repro.core.metrics import ScheduleMetrics
from repro.experiments.config import paper_workflows
from repro.experiments.runner import SweepResult
from repro.util.tables import format_table

#: tolerance (percentage points) for "gain ~= savings" in Table III
BALANCED_TOLERANCE_PP = 10.0
#: tolerance for treating a metric as "not worse" than the reference
EDGE_TOLERANCE_PP = 1e-6


# ----------------------------------------------------------------------
# Table I — policy pairing matrix (static)
# ----------------------------------------------------------------------
def table1_rows() -> List[tuple]:
    return [
        ("OneVMperTask", "priority ranking", "HEFT, CPA-Eager, GAIN", "no"),
        ("StartParNotExceed", "priority ranking", "HEFT", "no"),
        ("StartParExceed", "priority ranking", "HEFT", "no"),
        ("AllParNotExceed", "level ranking + ET desc", "AllPar1LnS", "yes"),
        ("AllParNotExceed", "level ranking + ET desc", "AllPar1LnSDyn", "yes"),
    ]


def render_table1() -> str:
    return format_table(
        ["Provisioning", "Task ordering", "Allocation", "Par. reduction"],
        table1_rows(),
        title="Table I — provisioning and allocation policies",
    )


# ----------------------------------------------------------------------
# Table II — EC2 prices (static platform data)
# ----------------------------------------------------------------------
def table2_rows(platform: CloudPlatform | None = None) -> List[tuple]:
    platform = platform or CloudPlatform.ec2()
    rows = []
    for name in sorted(platform.regions):
        r = platform.regions[name]
        rows.append(
            (
                name,
                r.prices["small"],
                r.prices["medium"],
                r.prices["large"],
                r.prices["xlarge"],
                r.transfer_out_per_gb,
            )
        )
    return rows


def render_table2(platform: CloudPlatform | None = None) -> str:
    return format_table(
        ["region", "small", "medium", "large", "xlarge", "transfer out"],
        table2_rows(platform),
        float_fmt=".3f",
        title="Table II — EC2 on-demand prices (Oct 31st 2012, $ per BTU)",
    )


# ----------------------------------------------------------------------
# Table III — gain/savings classification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Classification:
    """Strategies that land in the target square, bucketed as in Table III."""

    savings_dominant: List[str]  # 0 <= gain% < savings%
    gain_dominant: List[str]  # 0 <= savings% < gain%
    balanced: List[str]  # gain% ~= savings% (within tolerance)


def classify_cell(
    cell: Dict[str, ScheduleMetrics],
    tolerance_pp: float = BALANCED_TOLERANCE_PP,
) -> Classification:
    """Bucket a (scenario, workflow) cell's strategies per Table III.

    Only strategies in the target square (no loss of makespan *or*
    money vs. the reference) are classified; the rest are omitted, as in
    the paper.
    """
    savings_dom, gain_dom, balanced = [], [], []
    for label, m in cell.items():
        gain, savings = m.gain_pct, m.savings_pct
        if gain < -EDGE_TOLERANCE_PP or savings < -EDGE_TOLERANCE_PP:
            continue
        if abs(gain - savings) <= tolerance_pp:
            balanced.append(label)
        elif savings > gain:
            savings_dom.append(label)
        else:
            gain_dom.append(label)
    return Classification(sorted(savings_dom), sorted(gain_dom), sorted(balanced))


def table3(sweep: SweepResult) -> Dict[Tuple[str, str], Classification]:
    """Classification for every (scenario, workflow) of the sweep."""
    out = {}
    for sc in sweep.scenarios():
        for wf in sweep.workflows(sc):
            out[(sc, wf)] = classify_cell(sweep.metrics[sc][wf])
    return out


def render_table3(sweep: SweepResult) -> str:
    rows = []
    for (sc, wf), cls in table3(sweep).items():
        rows.append(
            (
                f"{sc}/{wf}",
                ", ".join(cls.savings_dominant) or "-",
                ", ".join(cls.gain_dominant) or "-",
                ", ".join(cls.balanced) or "-",
            )
        )
    return format_table(
        ["case", "0<=gain<savings", "0<=savings<gain", "gain~savings"],
        rows,
        title="Table III — strategies offering gain and/or savings",
        align_right=False,
    )


# ----------------------------------------------------------------------
# Table IV — AllPar[Not]Exceed savings fluctuation vs stable gain
# ----------------------------------------------------------------------
def table4(sweep: SweepResult) -> List[dict]:
    """Per instance size: loss interval per workflow (over all
    scenarios), the Pareto-case loss, the overall max-loss interval and
    the gain interval — the paper's Table IV row structure."""
    sizes = ("s", "m", "l")
    out = []
    for sfx in sizes:
        labels = (f"AllParExceed-{sfx}", f"AllParNotExceed-{sfx}")
        per_wf: Dict[str, Tuple[float, float, float]] = {}
        gains: List[float] = []
        losses: List[float] = []
        for wf in sweep.workflows(sweep.scenarios()[0]):
            wf_losses = []
            pareto_loss = None
            for sc in sweep.scenarios():
                for label in labels:
                    if label not in sweep.metrics[sc][wf]:
                        continue  # reduced sweeps may omit some sizes
                    m = sweep.get(sc, wf, label)
                    wf_losses.append(m.loss_pct)
                    losses.append(m.loss_pct)
                    gains.append(m.gain_pct)
                    if sc == "pareto" and label.startswith("AllParNotExceed"):
                        pareto_loss = m.loss_pct
            if wf_losses:
                per_wf[wf] = (min(wf_losses), max(wf_losses), pareto_loss or 0.0)
        if not losses:
            continue  # this size absent from a reduced sweep
        out.append(
            {
                "size": sfx,
                "per_workflow_loss": per_wf,
                "loss_interval": (min(losses), max(losses)),
                "gain_interval": (min(gains), max(gains)),
            }
        )
    return out


def render_table4(sweep: SweepResult) -> str:
    rows = []
    data = table4(sweep)
    workflows = list(data[0]["per_workflow_loss"]) if data else []
    for entry in data:
        cells = [entry["size"]]
        for wf in workflows:
            lo, hi, pareto = entry["per_workflow_loss"][wf]
            cells.append(f"[{lo:.0f},{hi:.0f}] ({pareto:.0f})")
        lo, hi = entry["loss_interval"]
        glo, ghi = entry["gain_interval"]
        cells.append(f"[{lo:.0f},{hi:.0f}]")
        cells.append(f"[{glo:.0f},{ghi:.0f}]")
        rows.append(tuple(cells))
    return format_table(
        ["size", *workflows, "max loss interval", "gain interval"],
        rows,
        title=(
            "Table IV — AllPar[Not]Exceed % loss interval per workflow "
            "(pareto loss), all scenarios"
        ),
        align_right=False,
    )


# ----------------------------------------------------------------------
# Table V — conclusions / adaptive recommendations
# ----------------------------------------------------------------------
def table5_rows(platform: CloudPlatform | None = None) -> List[tuple]:
    """The Table V matrix as produced by the adaptive selector on the
    paper's four workflows."""
    platform = platform or CloudPlatform.ec2()
    rows = []
    for name, wf in paper_workflows().items():
        cells = [name]
        for goal in (Goal.SAVINGS, Goal.GAIN, Goal.BALANCE):
            rec = recommend(wf, platform, goal)
            cells.append(rec.label)
        rows.append(tuple(cells))
    return rows


def render_table5(platform: CloudPlatform | None = None) -> str:
    return format_table(
        ["workflow", "savings", "gain", "balance"],
        table5_rows(platform),
        title="Table V — recommended strategy per workflow class and goal",
        align_right=False,
    )
