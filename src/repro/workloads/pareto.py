"""Feitelson-style Pareto workload model (paper Sect. IV-B, Fig. 3).

The paper draws execution times from a Pareto distribution with shape
``alpha = 2`` and task (data) sizes with ``alpha = 1.3``, both with
scale 500.  For a (Type I) Pareto with scale ``x_m`` and shape ``a``:

    CDF(x) = 1 - (x_m / x) ** a      for x >= x_m

so runtimes start at 500 s and the CDF reaches ~0.98 by 3500-4000 s,
matching the paper's Figure 3.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.util.rng import ensure_rng
from repro.workloads.base import ExecutionTimeModel
from repro.workflows.dag import Workflow

#: shape parameter for execution times (Feitelson / paper Sect. IV-B)
FEITELSON_RUNTIME_SHAPE = 2.0
#: shape parameter for task data sizes
FEITELSON_SIZE_SHAPE = 1.3
#: common scale parameter (minimum value of the distribution)
FEITELSON_SCALE = 500.0


def pareto_cdf(x, shape: float = FEITELSON_RUNTIME_SHAPE, scale: float = FEITELSON_SCALE):
    """Closed-form Type-I Pareto CDF; accepts scalars or arrays."""
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    x = np.asarray(x, dtype=float)
    out = 1.0 - (scale / np.maximum(x, scale)) ** shape
    return out if out.ndim else float(out)


def pareto_sample(rng: np.random.Generator, n: int, shape: float, scale: float) -> np.ndarray:
    """Draw *n* Type-I Pareto values (support ``[scale, inf)``).

    ``numpy``'s :meth:`Generator.pareto` is the Lomax (Pareto II)
    variant starting at 0; shifting by one and multiplying by the scale
    recovers the classic Pareto the paper uses.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    return scale * (1.0 + rng.pareto(shape, size=n))


class ParetoModel(ExecutionTimeModel):
    """Execution times ~ Pareto(shape=2, scale=500) per the paper."""

    name = "pareto"

    def __init__(
        self,
        shape: float = FEITELSON_RUNTIME_SHAPE,
        scale: float = FEITELSON_SCALE,
        cap: float | None = None,
    ) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        self.shape = shape
        self.scale = scale
        #: optional truncation (heavy tails occasionally produce day-long
        #: tasks; the paper's Fig. 3 x-axis stops at 4000 s)
        self.cap = cap

    def runtimes(self, wf: Workflow, seed=None) -> Dict[str, float]:
        rng = ensure_rng(seed)
        draws = pareto_sample(rng, len(wf), self.shape, self.scale)
        if self.cap is not None:
            draws = np.minimum(draws, self.cap)
        # task_ids is deterministic (insertion order), so the mapping is
        # reproducible for a fixed seed.
        return dict(zip(wf.task_ids, map(float, draws)))


class ParetoDataModel(ParetoModel):
    """Pareto runtimes *and* Pareto edge data sizes (shape 1.3).

    Data draws are in **MB** (scale 500 MB) and converted to GB, giving
    the data-intensive variant of the paper's workload.
    """

    name = "pareto+data"

    def __init__(
        self,
        shape: float = FEITELSON_RUNTIME_SHAPE,
        scale: float = FEITELSON_SCALE,
        size_shape: float = FEITELSON_SIZE_SHAPE,
        size_scale_mb: float = FEITELSON_SCALE,
        cap: float | None = None,
    ) -> None:
        super().__init__(shape, scale, cap)
        if size_shape <= 0 or size_scale_mb <= 0:
            raise ValueError("size shape and scale must be positive")
        self.size_shape = size_shape
        self.size_scale_mb = size_scale_mb

    def data_sizes(self, wf: Workflow, seed=None) -> Dict[Tuple[str, str], float]:
        # Independent stream: perturbing the runtime draw must not change
        # the size draw of unrelated edges. The derivation must be stable
        # across processes, so no Python hash() (its salt varies per run).
        if seed is None:
            rng = ensure_rng(None)
        else:
            if isinstance(seed, np.random.Generator):
                # derive a child without disturbing the caller's stream
                seed = int(seed.bit_generator.state["state"]["state"]) % 2**63
            rng = ensure_rng(np.random.SeedSequence([int(seed), 0xDA7A]))
        edges = [(u, v) for u, v, _ in wf.edges()]
        draws = pareto_sample(rng, len(edges), self.size_shape, self.size_scale_mb)
        return {e: float(mb) / 1024.0 for e, mb in zip(edges, draws)}
