#!/usr/bin/env python
"""How provisioning policies scale with workflow width.

Sweeps the MapReduce workflow from 2 to 64 mappers and tracks, for three
provisioning extremes, how makespan and cost grow — showing the
crossover the paper's conclusions describe: parallel provisioning buys
time on wide workflows, sequential provisioning buys money, and the gap
between them widens with the parallelism.

Run:  python examples/mapreduce_scaling.py
"""

from repro import (
    AllParScheduler,
    CloudPlatform,
    HeftScheduler,
    ParetoModel,
    apply_model,
    mapreduce,
)
from repro.util.tables import format_table


def main() -> None:
    platform = CloudPlatform.ec2()
    small = platform.itype("small")

    policies = {
        "OneVMperTask": HeftScheduler("OneVMperTask"),
        "StartParExceed": HeftScheduler("StartParExceed"),
        "AllParExceed": AllParScheduler(exceed=True),
    }

    rows = []
    for mappers in (2, 4, 8, 16, 32, 64):
        shape = mapreduce(mappers=mappers, reducers=max(1, mappers // 4))
        workflow = apply_model(shape, ParetoModel(), seed=7)
        cells = [f"{mappers} mappers ({len(workflow)} tasks)"]
        for scheduler in policies.values():
            sched = scheduler.schedule(workflow, platform, itype=small)
            cells.append(sched.makespan / 3600.0)
            cells.append(sched.total_cost)
        rows.append(tuple(cells))

    headers = ["width"]
    for name in policies:
        headers += [f"{name} h", f"{name} $"]
    print(
        format_table(
            headers,
            rows,
            title="MapReduce width sweep: makespan (hours) and cost ($) per policy",
        )
    )
    print(
        "\nShape check: AllParExceed tracks OneVMperTask's makespan at a "
        "fraction of its cost;\nStartParExceed stays cheapest but its "
        "makespan grows linearly with the width."
    )


if __name__ == "__main__":
    main()
