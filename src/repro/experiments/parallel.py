"""Parallel execution backends for the experiment layer.

The paper's evaluation grid (scenarios x workflows x strategies) and the
multi-seed replication layer are embarrassingly parallel: every
(scenario, workflow) cell and every replication seed is an independent
unit of work.  This module provides the :class:`ExecutionBackend`
abstraction — serial, thread pool, or process pool on top of
:mod:`concurrent.futures` — that ``run_sweep`` fans out over cells and
``replicate`` fans out over seeds.

Determinism contract
--------------------
Parallel results are *identical* to serial ones, not merely
statistically equivalent:

* each work unit gets its own child :class:`numpy.random.SeedSequence`
  spawned up front by index (``spawn_seeds``), so the draws depend only
  on the unit's position in the grid, never on scheduling order;
* ``ExecutionBackend.map`` preserves input order, so the merge is
  order-independent by construction.

The process backend requires every object shipped to a worker to be
picklable.  The paper's scenarios and strategies are (their factories
are classes or :func:`functools.partial` objects); custom specs built
from lambdas or closures only work with the ``serial`` and ``thread``
backends.
"""

from __future__ import annotations

import os
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.cloud.platform import CloudPlatform
from repro.core.baseline import reference_schedule
from repro.core.metrics import ScheduleMetrics, compare_to_reference
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec
from repro.experiments.scenarios import Scenario
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.executor import simulate_schedule
from repro.util.suggest import unknown_name_message
from repro.workflows.dag import Workflow

T = TypeVar("T")
R = TypeVar("R")

#: label the runner attaches to the reference row of every cell
REFERENCE_LABEL = "OneVMperTask-s (reference)"


def default_jobs() -> int:
    """Worker count used when a parallel backend is built without one."""
    return os.cpu_count() or 1


class ExecutionBackend(ABC):
    """Strategy object deciding *where* independent work units run."""

    #: registry name; also what ``describe()`` and the CLI report
    name: str = "abstract"

    @abstractmethod
    def map(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> List[R]:  # pragma: no cover - interface
        """Apply *fn* to every item, returning results in input order."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run everything in the calling thread (the historical behavior)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared plumbing for the concurrent.futures-based backends."""

    _executor_cls: type

    def __init__(self, jobs: int | None = None) -> None:
        jobs = default_jobs() if jobs is None else int(jobs)
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def describe(self) -> str:
        return f"{self.name}({self.jobs})"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with self._executor_cls(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadBackend(_PoolBackend):
    """Thread pool: zero pickling constraints, but the GIL caps the
    speedup of the pure-python scheduling hot path."""

    name = "thread"
    _executor_cls = ThreadPoolExecutor


# ----------------------------------------------------------------------
# process-pool worker plumbing
# ----------------------------------------------------------------------
# The naive ``pool.map(fn, items)`` pickles *fn* together with every
# item and round-trips one IPC message per unit, which on small sweeps
# costs more than the work itself (the original BENCH_sweep.json showed
# the process backend *slower* than serial).  Instead the whole payload
# is shipped once per worker through the pool initializer, and the map
# dispatches plain integer indices in chunks.
_SHARED_FN: "Callable | None" = None
_SHARED_ITEMS: Sequence = ()


def _init_shared_call(fn: Callable[[T], R], items: Sequence[T]) -> None:
    """Pool initializer: stash the payload once in each worker process."""
    global _SHARED_FN, _SHARED_ITEMS
    _SHARED_FN = fn
    _SHARED_ITEMS = items


def _run_shared(index: int):
    """Worker entry point: run the shared callable on one shared item."""
    assert _SHARED_FN is not None, "worker initializer did not run"
    return _SHARED_FN(_SHARED_ITEMS[index])


class ProcessBackend(_PoolBackend):
    """Process pool: true multi-core execution; work units must pickle.

    The payload ``(fn, items)`` is pickled once per worker (via the pool
    initializer) rather than once per item, and indices are dispatched
    in coarse contiguous chunks, so per-unit IPC overhead is a few bytes
    instead of a full scenario + workflow pickle.

    Shard-aware dispatch (see EXPERIMENTS.md, "when parallelism pays"):
    the pool's fixed cost — forking workers and re-pickling the payload
    into each — is on the order of ``min_parallel_seconds``, so the map
    first runs one unit serially as a probe and falls back to plain
    serial execution whenever the extrapolated remaining work would not
    cover that cost, and always on a single-core host.  Either way the
    results (and their order) are identical to the serial backend's;
    only *where* the units run changes.
    """

    name = "process"
    _executor_cls = ProcessPoolExecutor

    #: estimated remaining serial work (seconds) below which forking a
    #: pool cannot pay for itself — roughly the measured worker spin-up
    #: + payload pickling cost on a small container
    min_parallel_seconds: float = 0.75

    def __init__(
        self, jobs: int | None = None, min_parallel_seconds: float | None = None
    ) -> None:
        super().__init__(jobs)
        if min_parallel_seconds is not None:
            if min_parallel_seconds < 0:
                raise ExperimentError(
                    f"min_parallel_seconds must be >= 0, got {min_parallel_seconds}"
                )
            self.min_parallel_seconds = float(min_parallel_seconds)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        n = len(items)
        if self.jobs == 1 or n <= 1:
            return [fn(item) for item in items]
        # ``min_parallel_seconds=0`` means "always fork" — the escape
        # hatch the pool-path tests use on single-core CI hosts
        if self.min_parallel_seconds > 0.0 and (os.cpu_count() or 1) < 2:
            # one core: workers only add pickling and context switches
            return [fn(item) for item in items]
        # Probe: run the first unit in-process and extrapolate.  Small
        # payloads finish serially — process(2) must never lose to
        # serial.  The probe's result is reused as results[0].
        start = time.perf_counter()
        out = [fn(items[0])]
        probe_seconds = time.perf_counter() - start
        rest = n - 1
        if probe_seconds * rest < self.min_parallel_seconds:
            out.extend(fn(item) for item in items[1:])
            return out
        workers = min(self.jobs, rest)
        # Coarse contiguous chunks: one chunk per worker for small maps
        # (a single dispatch round; consecutive units — e.g. the
        # replicate layer's seeds for one configuration — stay
        # co-located in one worker), ~4 per worker beyond that so a slow
        # chunk cannot starve the others.
        if rest <= workers * 8:
            chunksize = -(-rest // workers)  # ceil
        else:
            chunksize = max(1, rest // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_shared_call,
            initargs=(fn, items),
        ) as pool:
            out.extend(pool.map(_run_shared, range(1, n), chunksize=chunksize))
        return out


BACKENDS: Dict[str, type] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(
    backend: "str | ExecutionBackend | None" = None, jobs: int | None = None
) -> ExecutionBackend:
    """Resolve the (backend, jobs) pair every experiment entry point takes.

    ``backend`` may be an :class:`ExecutionBackend` instance (returned
    as-is), a registry name (``"serial"``, ``"thread"``, ``"process"``),
    or ``None``, which picks serial for ``jobs`` in (None, 0, 1) and a
    process pool otherwise — processes, not threads, because scheduling
    is CPU-bound python code.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        if jobs is None or jobs <= 1:
            return SerialBackend()
        return ProcessBackend(jobs)
    name = str(backend).lower()
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ExperimentError(
            unknown_name_message("backend", str(backend), BACKENDS)
        ) from None
    if cls is SerialBackend:
        return SerialBackend()
    return cls(jobs)


# ----------------------------------------------------------------------
# guarded execution: capture per-unit errors instead of aborting the map
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellFailure:
    """One work unit that did not produce a result."""

    label: str
    #: ``"TypeName: message"`` of the final error
    error: str
    #: full traceback of the final attempt ("" for timeouts)
    traceback: str
    #: how many attempts were made before giving up
    attempts: int

    def __str__(self) -> str:
        return f"{self.label}: {self.error} (after {self.attempts} attempt(s))"


def _call_with_timeout(fn: Callable[[T], R], item: T, timeout: float) -> R:
    """Run ``fn(item)`` with a wall-clock deadline.

    Deliberately **not** ``SIGALRM``: signal handlers can only be
    installed from the main thread of the main interpreter, and guarded
    cells routinely run elsewhere — thread-backend workers, process-pool
    workers dispatching from their own threads, and pytest runs where
    the simulator test suite already owns the alarm for its per-test
    deadline (``tests/simulator/conftest.py``, which itself no-ops off
    the main thread for the same reason).  A signal-based deadline here
    would either crash with ``ValueError: signal only works in main
    thread`` or silently clobber that fixture's alarm.

    Instead a single-use helper thread runs the cell and the caller
    waits with ``Future.result(timeout=...)``, which works identically
    on every thread of every backend.  On timeout the helper thread is
    abandoned, not killed — python offers no safe thread cancellation —
    so a timed-out cell leaks one thread until its work finishes;
    acceptable for the sweep sizes this repo runs.  The timeout is
    reported as a :class:`CellFailure` by :class:`_GuardedCall`, so a
    hung cell lands in the sweep's ``failure_summary()`` instead of
    wedging the whole run.
    """
    pool = ThreadPoolExecutor(max_workers=1)
    future = pool.submit(fn, item)
    try:
        return future.result(timeout=timeout)
    finally:
        # never the context manager: __exit__ would join the worker and
        # wait out exactly the hang the timeout is meant to bound
        pool.shutdown(wait=False, cancel_futures=True)


class _GuardedCall:
    """Picklable per-unit wrapper: bounded retries + optional timeout.

    Returns ``(value, None)`` on success and ``(None, CellFailure)``
    when every attempt failed, so a crashing unit never takes down the
    whole map.  Timeouts are terminal — a deterministic workload that
    exceeded the deadline once will exceed it again.
    """

    def __init__(
        self,
        fn: Callable[[T], R],
        retries: int = 0,
        timeout: float | None = None,
        label_fn: Callable[[T], str] | None = None,
    ) -> None:
        if retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ExperimentError(f"timeout must be positive, got {timeout}")
        self.fn = fn
        self.retries = retries
        self.timeout = timeout
        self.label_fn = label_fn

    def __call__(self, item: T) -> "Tuple[Optional[R], Optional[CellFailure]]":
        label = self.label_fn(item) if self.label_fn is not None else repr(item)[:120]
        error = tb = ""
        attempt = 0
        for attempt in range(1, self.retries + 2):
            try:
                if self.timeout is not None:
                    return _call_with_timeout(self.fn, item, self.timeout), None
                return self.fn(item), None
            except FuturesTimeoutError:
                return None, CellFailure(
                    label=label,
                    error=f"TimeoutError: exceeded {self.timeout}s",
                    traceback="",
                    attempts=attempt,
                )
            except Exception as exc:  # noqa: BLE001 - the whole point
                error = f"{type(exc).__name__}: {exc}"
                tb = traceback.format_exc()
        return None, CellFailure(label=label, error=error, traceback=tb, attempts=attempt)


def map_guarded(
    backend: ExecutionBackend,
    fn: Callable[[T], R],
    items: Iterable[T],
    label_fn: Callable[[T], str] | None = None,
    retries: int = 0,
    timeout: float | None = None,
) -> "Tuple[List[Optional[R]], List[CellFailure]]":
    """Fan *items* out over *backend*, capturing per-unit errors.

    Returns ``(results, failures)``: ``results`` is input-ordered with
    ``None`` holes where a unit failed, ``failures`` describes the holes
    (label, error, traceback, attempt count) in input order.  With the
    process backend, *fn* and *label_fn* must be picklable (module-level
    functions or partials, not lambdas).
    """
    guarded = _GuardedCall(fn, retries=retries, timeout=timeout, label_fn=label_fn)
    pairs = backend.map(guarded, items)
    results: List[Optional[R]] = []
    failures: List[CellFailure] = []
    for value, failure in pairs:
        results.append(value)
        if failure is not None:
            failures.append(failure)
    return results, failures


# ----------------------------------------------------------------------
# sweep fan-out: one unit per (scenario, workflow) cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One independent (scenario, workflow) cell of the evaluation grid."""

    scenario: Scenario
    workflow_name: str
    shape: Workflow
    strategies: Sequence[StrategySpec]
    platform: CloudPlatform
    seed: np.random.SeedSequence
    verify: bool = False
    #: collect per-run counters into ``CellResult.counters``
    collect: bool = False
    #: record a per-cell trace into ``CellResult.trace_events``
    trace: bool = False


@dataclass(frozen=True)
class CellResult:
    """Everything ``run_sweep`` merges back from one cell."""

    scenario: str
    workflow: str
    reference: ScheduleMetrics
    metrics: Dict[str, ScheduleMetrics] = field(default_factory=dict)
    #: per-cell counter snapshot, ``MetricsRegistry.as_dict()`` form
    #: (``SweepCell.collect``); counters hold only simulation facts, so
    #: the same seed yields the same values on every backend
    counters: Optional[Dict[str, Dict[str, float]]] = None
    #: per-cell trace events as plain dicts (``SweepCell.trace``) —
    #: picklable, re-homed by ``Tracer.adopt`` in the parent
    trace_events: Tuple[dict, ...] = ()


def cell_label(cell: SweepCell) -> str:
    """Human-readable grid coordinates, used in failure reports."""
    return f"{cell.scenario.name}/{cell.workflow_name}"


def run_cell(cell: SweepCell) -> CellResult:
    """Evaluate every strategy of one grid cell (worker entry point).

    Reconstructs the cell RNG from its :class:`~numpy.random.SeedSequence`
    exactly as the serial runner would, so results are identical no
    matter which worker (or machine) runs the cell.  With
    ``cell.collect``/``cell.trace`` the cell additionally carries back a
    counter snapshot and/or its trace events; both are plain data, so
    the same cell is observable identically from every backend.
    """
    from repro.experiments.runner import run_strategy

    registry = MetricsRegistry() if cell.collect else None
    tracer = Tracer() if cell.trace else NULL_TRACER
    label = cell_label(cell)

    def evaluate() -> Tuple[ScheduleMetrics, Dict[str, ScheduleMetrics]]:
        rng = np.random.default_rng(cell.seed)
        concrete = cell.scenario.apply(cell.shape, rng)
        ref = reference_schedule(concrete, cell.platform)
        if cell.verify:
            simulate_schedule(ref, check=True)
        reference = compare_to_reference(ref, ref, label=REFERENCE_LABEL)
        row: Dict[str, ScheduleMetrics] = {}
        for spec in cell.strategies:
            with tracer.span(
                f"strategy:{spec.label}", cat="sweep", tid="main", cell=label
            ):
                row[spec.label] = run_strategy(
                    spec,
                    concrete,
                    cell.platform,
                    reference=ref,
                    verify=cell.verify,
                    tracer=tracer if tracer.enabled else None,
                )
        return reference, row

    if registry is not None:
        with registry.activate():
            with tracer.span(f"cell:{label}", cat="sweep", tid="main"):
                reference, row = evaluate()
        registry.inc("sweep.cells")
    else:
        with tracer.span(f"cell:{label}", cat="sweep", tid="main"):
            reference, row = evaluate()
    return CellResult(
        scenario=cell.scenario.name,
        workflow=cell.workflow_name,
        reference=reference,
        metrics=row,
        counters=registry.as_dict() if registry is not None else None,
        trace_events=tuple(tracer.events),
    )
