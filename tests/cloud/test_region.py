"""Tests for the Table II region/price data."""

import pytest

from repro.cloud.instance import MEDIUM, SMALL
from repro.cloud.region import DEFAULT_REGION, EC2_REGIONS, Region, region
from repro.errors import PlatformError


class TestTableII:
    def test_seven_regions(self):
        assert len(EC2_REGIONS) == 7

    def test_paper_small_prices(self):
        expected = {
            "us-east-virginia": 0.080,
            "us-west-oregon": 0.080,
            "us-west-california": 0.090,
            "eu-dublin": 0.085,
            "asia-singapore": 0.085,
            "asia-tokyo": 0.092,
            "sa-sao-paulo": 0.115,
        }
        for name, price in expected.items():
            assert EC2_REGIONS[name].price("small") == pytest.approx(price)

    def test_cost_per_core_progression(self):
        """Table II prices follow small x {1,2,4,8} exactly."""
        for r in EC2_REGIONS.values():
            s = r.price("small")
            assert r.price("medium") == pytest.approx(2 * s)
            assert r.price("large") == pytest.approx(4 * s)
            assert r.price("xlarge") == pytest.approx(8 * s)

    def test_paper_transfer_prices(self):
        assert EC2_REGIONS["us-east-virginia"].transfer_out_per_gb == 0.12
        assert EC2_REGIONS["asia-singapore"].transfer_out_per_gb == 0.19
        assert EC2_REGIONS["asia-tokyo"].transfer_out_per_gb == 0.201
        assert EC2_REGIONS["sa-sao-paulo"].transfer_out_per_gb == 0.25

    def test_default_region_is_cheapest(self):
        assert DEFAULT_REGION.name == "us-east-virginia"


class TestRegionApi:
    def test_price_accepts_instance_type(self):
        r = EC2_REGIONS["eu-dublin"]
        assert r.price(SMALL) == r.price("small")
        assert r.price(MEDIUM) == pytest.approx(0.17)

    def test_price_unknown_type(self):
        with pytest.raises(PlatformError):
            DEFAULT_REGION.price("nano")

    def test_lookup(self):
        assert region("eu-dublin").name == "eu-dublin"
        with pytest.raises(PlatformError):
            region("mars-olympus")

    def test_validation(self):
        with pytest.raises(PlatformError):
            Region("", {"small": 0.1}, 0.1)
        with pytest.raises(PlatformError):
            Region("r", {"small": -0.1}, 0.1)
        with pytest.raises(PlatformError):
            Region("r", {"small": 0.1}, -0.1)

    def test_zero_price_private_region_allowed(self):
        from repro.cloud.region import private_region

        r = private_region("lab")
        assert r.name == "lab"
        assert r.price("xlarge") == 0.0
