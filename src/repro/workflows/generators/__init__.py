"""Generators for the paper's four workflow shapes (Fig. 2) plus the
synthetic shapes its future-work section calls for."""

from repro.workflows.generators.montage import montage
from repro.workflows.generators.cstem import cstem
from repro.workflows.generators.mapreduce import mapreduce
from repro.workflows.generators.sequential import sequential
from repro.workflows.generators.synthetic import fork_join, random_layered
from repro.workflows.generators.pegasus import cybershake, epigenomics, ligo, sipht
from repro.workflows.generators.bot import bag_of_tasks

__all__ = [
    "bag_of_tasks",
    "montage",
    "cstem",
    "mapreduce",
    "sequential",
    "fork_join",
    "random_layered",
    "epigenomics",
    "cybershake",
    "ligo",
    "sipht",
]
