"""Tests for multi-workflow stream simulation."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.simulator.stream import (
    Submission,
    merge_stream,
    poisson_stream,
    run_stream,
)
from repro.workflows.generators import mapreduce, montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestMerge:
    def test_namespaced_ids(self):
        merged, release, groups = merge_stream(
            [Submission(sequential(3), 0.0), Submission(sequential(3), 100.0)]
        )
        assert len(merged) == 6
        assert "w0:step_000" in merged
        assert "w1:step_000" in merged
        assert groups[0] == [f"w0:step_{i:03d}" for i in range(3)]

    def test_release_times_on_entries_only(self):
        merged, release, _ = merge_stream(
            [Submission(montage(), 0.0), Submission(montage(), 500.0)]
        )
        assert release["w1:mProject_0"] == 500.0
        assert "w1:mJPEG" not in release

    def test_no_cross_instance_edges(self):
        merged, _, groups = merge_stream(
            [Submission(sequential(2), 0.0), Submission(sequential(2), 0.0)]
        )
        for u, v, _gb in merged.edges():
            assert u.split(":")[0] == v.split(":")[0]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            merge_stream([])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ExperimentError):
            Submission(sequential(2), -1.0)


class TestRunStream:
    def test_instances_complete_after_arrival(self, platform):
        subs = [Submission(sequential(3), 0.0), Submission(sequential(3), 5000.0)]
        result = run_stream(subs, platform, policy="StartParExceed")
        for (arrival, finish, response), sub in zip(result.per_instance, subs):
            assert arrival == sub.arrival
            assert finish >= arrival + sub.workflow.total_work() - 1e-6
            assert response == pytest.approx(finish - arrival)

    def test_shared_fleet_reuses_alive_vms(self, platform):
        """The second instance's *non-entry* work lands on the first
        instance's VM while it is still alive (entry tasks always rent
        under StartPar*)."""
        subs = [
            Submission(sequential(2), 0.0),  # vm0 busy 0..2000, alive to 3600
            Submission(sequential(2), 2500.0),
        ]
        result = run_stream(subs, platform, policy="StartParExceed")
        assert result.vm_count == 2  # one rental per instance entry
        by_vm = {}
        for tid, vm in result.online.task_vm.items():
            by_vm.setdefault(vm, set()).add(tid.split(":")[0])
        # some VM hosted tasks of both instances: cross-instance reuse
        assert any(len(instances) == 2 for instances in by_vm.values())

    def test_gap_larger_than_horizon_rents_fresh(self, platform):
        subs = [
            Submission(sequential(2), 0.0),
            Submission(sequential(2), 20_000.0),  # first VM long gone
        ]
        result = run_stream(subs, platform, policy="StartParExceed")
        assert result.vm_count == 2

    def test_response_metrics(self, platform):
        subs = poisson_stream(mapreduce(mappers=3, reducers=1), 4, 1000.0, seed=1)
        result = run_stream(subs, platform, policy="AllParExceed")
        assert len(result.per_instance) == 4
        assert result.mean_response <= result.max_response
        assert result.idle_seconds >= 0


class TestPoissonStream:
    def test_reproducible(self):
        a = poisson_stream(sequential(2), 5, 100.0, seed=3)
        b = poisson_stream(sequential(2), 5, 100.0, seed=3)
        assert [s.arrival for s in a] == [s.arrival for s in b]

    def test_arrivals_sorted_starting_zero(self):
        subs = poisson_stream(sequential(2), 5, 100.0, seed=0)
        arrivals = [s.arrival for s in subs]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_zero_interarrival_is_burst(self):
        subs = poisson_stream(sequential(2), 3, 0.0)
        assert all(s.arrival == 0.0 for s in subs)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            poisson_stream(sequential(2), 0, 100.0)
        with pytest.raises(ExperimentError):
            poisson_stream(sequential(2), 3, -1.0)
