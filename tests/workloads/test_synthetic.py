"""Tests for the category-scaled and table workload models."""

import pytest

from repro.workloads.synthetic import CategoryScaledModel, TableModel
from repro.workflows.generators import mapreduce


class TestCategoryScaledModel:
    def test_scales_by_category(self):
        wf = mapreduce(mappers=2, reducers=1)
        works = CategoryScaledModel({"map": 10.0}).runtimes(wf)
        assert works["map1_0"] == wf.task("map1_0").work * 10.0
        assert works["reduce_0"] == wf.task("reduce_0").work

    def test_default_scale(self):
        wf = mapreduce(mappers=2, reducers=1)
        works = CategoryScaledModel({}, default_scale=2.0).runtimes(wf)
        assert works["split"] == wf.task("split").work * 2.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            CategoryScaledModel({"map": 0.0})
        with pytest.raises(ValueError):
            CategoryScaledModel({}, default_scale=-1.0)


class TestTableModel:
    def test_exact_lookup(self):
        wf = mapreduce(mappers=1, reducers=1)
        table = {tid: 42.0 for tid in wf.task_ids}
        assert TableModel(table).runtimes(wf) == table

    def test_default_fills_gaps(self):
        wf = mapreduce(mappers=1, reducers=1)
        works = TableModel({"split": 9.0}, default=5.0).runtimes(wf)
        assert works["split"] == 9.0
        assert works["merge"] == 5.0

    def test_missing_without_default_raises(self):
        wf = mapreduce(mappers=1, reducers=1)
        with pytest.raises(KeyError):
            TableModel({"split": 9.0}).runtimes(wf)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TableModel({"a": -1.0})
        with pytest.raises(ValueError):
            TableModel({}, default=0.0)
