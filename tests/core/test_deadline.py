"""Tests for the SHEFT-style deadline-constrained scheduler."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.deadline import DeadlineScheduler
from repro.core.baseline import reference_schedule
from repro.errors import SchedulingError
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def workflow():
    return apply_model(montage(), ParetoModel(), seed=11)


class TestDeadlineMet:
    def test_loose_deadline_stays_small(self, workflow, platform):
        ref = reference_schedule(workflow, platform)
        sched = DeadlineScheduler(deadline=ref.makespan * 2).schedule(
            workflow, platform
        )
        assert all(vm.itype.name == "small" for vm in sched.vms)
        assert sched.total_cost == pytest.approx(ref.total_cost)

    def test_tight_deadline_upgrades(self, workflow, platform):
        ref = reference_schedule(workflow, platform)
        deadline = ref.makespan * 0.7
        sched = DeadlineScheduler(deadline=deadline).schedule(workflow, platform)
        assert sched.makespan <= deadline + 1e-6
        assert any(vm.itype.name != "small" for vm in sched.vms)
        simulate_schedule(sched, check=True)

    def test_tighter_deadline_costs_more(self, workflow, platform):
        ref = reference_schedule(workflow, platform)
        costs = [
            DeadlineScheduler(deadline=ref.makespan * f)
            .schedule(workflow, platform)
            .total_cost
            for f in (1.0, 0.8, 0.6, 0.45)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_chain_deadline(self, platform):
        """A chain's minimum makespan is total work / 2.7."""
        wf = sequential(4)
        floor = wf.total_work() / 2.7
        sched = DeadlineScheduler(deadline=floor * 1.01).schedule(wf, platform)
        assert sched.makespan <= floor * 1.01 + 1e-6
        assert all(vm.itype.name == "xlarge" for vm in sched.vms)


class TestCoolDown:
    def test_off_path_tasks_not_upgraded(self, platform):
        """Phase 2 strips upgrades the deadline never needed."""
        wf = apply_model(montage(), ParetoModel(), seed=3)
        ref = reference_schedule(wf, platform)
        sched = DeadlineScheduler(deadline=ref.makespan * 0.75).schedule(wf, platform)
        # at least some tasks remain on small instances
        assert any(vm.itype.name == "small" for vm in sched.vms)

    def test_cost_no_worse_than_all_xlarge(self, workflow, platform):
        ref = reference_schedule(workflow, platform)
        sched = DeadlineScheduler(deadline=ref.makespan * 0.5).schedule(
            workflow, platform
        )
        all_xl_cost = sum(
            platform.billing.vm_cost(
                platform.runtime(t, platform.itype("xlarge")),
                platform.itype("xlarge"),
                platform.default_region,
            )
            for t in workflow.tasks
        )
        assert sched.total_cost <= all_xl_cost + 1e-9


class TestInfeasible:
    def test_raises_by_default(self, workflow, platform):
        with pytest.raises(SchedulingError, match="infeasible"):
            DeadlineScheduler(deadline=1.0).schedule(workflow, platform)

    def test_best_effort_returns_fastest(self, workflow, platform):
        sched = DeadlineScheduler(deadline=1.0, best_effort=True).schedule(
            workflow, platform
        )
        # the whole critical path ends up on the fastest type
        cp, _ = workflow.critical_path()
        assert all(sched.vm_of(t).itype.name == "xlarge" for t in cp)

    def test_invalid_deadline(self):
        with pytest.raises(SchedulingError):
            DeadlineScheduler(deadline=0.0)
