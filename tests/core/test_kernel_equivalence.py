"""Property tests: the indexed kernels are byte-identical to the
straightforward reference implementations.

The scaling work (DESIGN.md §9) rewrote the provisioning policies, the
ranking pass and the DAG sweeps against incremental indexes.  The
contract is *trace identity*, not statistical equivalence: on any DAG,
the optimized kernel must reproduce the reference schedule exactly —
same VMs (flavor, region, rent window), same task order and timing on
each VM, same makespan and cost.  These tests drive both kernels over
seeded random DAGs of the shapes that stress different code paths
(wide levels, pure chains, diamonds, mapreduce fan-in) and compare the
full trace.
"""

from __future__ import annotations

import math

import pytest

from repro.cloud.instance import SMALL
from repro.cloud.platform import CloudPlatform
from repro.core.allocation import HeftScheduler, LevelScheduler
from repro.core.allocation.ranking import upward_rank, upward_rank_reference
from repro.core.provisioning import PROVISIONING_POLICIES, REFERENCE_POLICIES
from repro.workflows.dag import Workflow
from repro.workflows.generators import fork_join, mapreduce, random_layered
from repro.workflows.reference import critical_path_reference, level_of_reference
from repro.workflows.task import Task


# ----------------------------------------------------------------------
# DAG zoo: seeded shapes that stress different kernel paths
# ----------------------------------------------------------------------
def _chain(n: int, seed: int) -> Workflow:
    """Pure chain: every level has size 1 (sequential policy branch)."""
    wf = Workflow(f"chain{n}-s{seed}")
    prev = None
    for i in range(n):
        t = wf.add_task(Task(f"t{i}", 300.0 + 700.0 * ((seed * 31 + i) % 7), "w"))
        if prev is not None:
            wf.add_dependency(prev.id, t.id, 0.02 * ((seed + i) % 3))
        prev = t
    return wf.validate()


def _wide(seed: int) -> Workflow:
    """Few layers, wide levels: stresses the level-pool index."""
    return random_layered(
        layers=4, width_range=(6, 14), edge_density=0.4, seed=seed,
        name=f"wide-s{seed}",
    )


def _diamond(seed: int) -> Workflow:
    """Repeated fork-join diamonds: alternating level sizes 1 and w."""
    return fork_join(width=3 + seed % 5, stages=2 + seed % 3,
                     name=f"diamond-s{seed}")


def _mapreduce(seed: int) -> Workflow:
    return mapreduce(mappers=5 + 3 * (seed % 4), reducers=1 + seed % 3,
                     name=f"mr-s{seed}")


def _deep_random(seed: int) -> Workflow:
    """Deep random layering: mixes singleton and parallel levels."""
    return random_layered(
        layers=9, width_range=(1, 5), edge_density=0.6, seed=seed,
        name=f"deep-s{seed}",
    )


SHAPES = {
    "chain": lambda seed: _chain(12 + seed % 9, seed),
    "wide": _wide,
    "diamond": _diamond,
    "mapreduce": _mapreduce,
    "deep": _deep_random,
}
SEEDS = [1, 7, 2013]


def _dag_cases():
    return [
        pytest.param(shape, seed, id=f"{shape}-s{seed}")
        for shape in SHAPES
        for seed in SEEDS
    ]


# ----------------------------------------------------------------------
# trace fingerprint
# ----------------------------------------------------------------------
def _fingerprint(schedule):
    """The full observable trace of a schedule, labels excluded (the
    reference policies carry ``*Reference`` names by design)."""
    vms = tuple(
        (
            vm.id,
            vm.itype.name,
            vm.region.name,
            vm.boot_seconds,
            tuple((p.task_id, p.start, p.end) for p in vm.placements),
        )
        for vm in schedule.vms
    )
    return vms, schedule.makespan, schedule.total_cost


def _scheduler_for(policy_name: str):
    """The paper's pairing: AllPar* needs level knowledge, the rest HEFT."""
    if policy_name.startswith("AllPar"):
        return LevelScheduler
    return HeftScheduler


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


# ----------------------------------------------------------------------
# provisioning kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape,seed", _dag_cases())
@pytest.mark.parametrize("policy_name", sorted(REFERENCE_POLICIES))
def test_policy_trace_identical_to_reference(policy_name, shape, seed, platform):
    wf = SHAPES[shape](seed)
    scheduler_cls = _scheduler_for(policy_name)
    optimized = scheduler_cls(PROVISIONING_POLICIES[policy_name]()).schedule(
        wf, platform
    )
    reference = scheduler_cls(REFERENCE_POLICIES[policy_name]()).schedule(
        wf, platform
    )
    assert _fingerprint(optimized) == _fingerprint(reference)


def test_start_par_try_all_vms_trace_identical(platform):
    """The try_all_vms fallback scan has its own index path."""
    opt_cls = PROVISIONING_POLICIES["StartParNotExceed"]
    ref_cls = REFERENCE_POLICIES["StartParNotExceed"]
    for seed in SEEDS:
        wf = _deep_random(seed)
        optimized = HeftScheduler(opt_cls(try_all_vms=True)).schedule(wf, platform)
        reference = HeftScheduler(ref_cls(try_all_vms=True)).schedule(wf, platform)
        assert _fingerprint(optimized) == _fingerprint(reference)


# ----------------------------------------------------------------------
# ranking and DAG sweeps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape,seed", _dag_cases())
@pytest.mark.parametrize("include_transfers", [True, False])
def test_upward_rank_identical_to_reference(shape, seed, include_transfers, platform):
    wf = SHAPES[shape](seed)
    fast = upward_rank(wf, platform, SMALL, include_transfers=include_transfers)
    slow = upward_rank_reference(
        wf, platform, SMALL, include_transfers=include_transfers
    )
    assert set(fast) == set(slow)
    for tid in fast:
        # byte-identical floats, not approx: both kernels must combine
        # the same operands in the same order
        assert fast[tid] == slow[tid], tid


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_level_of_identical_to_reference(shape, seed):
    wf = SHAPES[shape](seed)
    assert wf.level_of() == level_of_reference(wf)


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_critical_path_identical_to_reference(shape, seed):
    wf = SHAPES[shape](seed)
    assert wf.critical_path() == critical_path_reference(wf)
    halved = lambda tid: wf.task(tid).work / 2.0  # noqa: E731
    transfer = lambda u, v: 11.0  # noqa: E731
    assert wf.critical_path(
        exec_time=halved, transfer_time=transfer
    ) == critical_path_reference(wf, exec_time=halved, transfer_time=transfer)


@pytest.mark.parametrize("shape,seed", _dag_cases())
def test_schedules_are_internally_consistent(shape, seed, platform):
    """Sanity on top of trace identity: optimized schedules validate."""
    wf = SHAPES[shape](seed)
    s = HeftScheduler("StartParExceed").schedule(wf, platform)
    assert math.isfinite(s.makespan) and s.makespan > 0
    assert set(s.workflow.task_ids) == {
        p.task_id for vm in s.vms for p in vm.placements
    }
