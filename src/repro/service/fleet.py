"""Shared VM-fleet ownership: rent, reuse, idle-expiry, billing.

Historically every scheduling run owned its fleet privately — the
static :class:`~repro.core.builder.ScheduleBuilder` kept a ``vms`` list
and the online executor kept a ``fleet`` list, so VM state died with
the run.  A :class:`FleetManager` lifts that ownership out: it assigns
VM ids, stores the records, marks idle VMs dead at their BTU horizon,
and attributes rent to the tenant that requested each VM — so *many*
workflow executions (the WaaS service loop) can share one long-lived
fleet, while a run that builds its own private manager behaves exactly
as before.

The manager is deliberately mechanism, not policy: *which* VM a task
lands on stays with the provisioning policies; the manager only owns
the records and their lifecycle.  It imports nothing above the cloud
layer, so the static builder, the online executor and the service loop
can all depend on it without cycles.

Indexed hot path (DESIGN.md §14)
--------------------------------
A long service run rents tens of thousands of VMs, almost all of them
dead at any moment — but the original :meth:`reap` and :meth:`alive`
re-scanned the *entire* roster per placement, making the online path
O(tasks × fleet).  The manager now keeps incremental indexes, the
PR 4 stamp-guarded lazy-heap pattern applied to the live fleet:

* a **live-id set** maintained at rent/death, so liveness queries never
  touch dead records;
* an **expiry min-heap** of ``(lower-bound horizon, id, stamp)``
  entries — ``free_at`` is pushed as a lower bound (it never exceeds
  the BTU horizon), and a popped entry whose true horizon has not
  passed is re-armed at that horizon, so :meth:`reap` is O(k log n)
  for k expired/stale entries instead of O(fleet);
* a **busy-rank max-heap** over live VMs keyed by the policies'
  ``(busy_seconds, -id)`` tie-break, answering the StartPar* "most
  utilized VM" query as a stale-skipping peek;
* a **free-pool**: a min-heap by ``free_at`` feeding an idle max-heap
  by busy rank as simulation time passes, answering the AllPar*
  "most utilized *idle* VM (that fits)" query without scanning.

Every mutation bumps the VM's stamp (``note_use`` after a placement,
death at reap/crash), invalidating old heap entries lazily.  The
original full scans are preserved (``reap_reference``; pass
``indexed=False``) as the property-test oracle: decision logs, service
rollups and metric counters are byte-identical between the two paths.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.billing import BillingModel
from repro.cloud.instance import InstanceType
from repro.cloud.region import Region
from repro.errors import SimulationError

#: reap/idle comparisons share the executor's float slack
_EPS = 1e-9


@dataclass
class FleetVM:
    """One VM of a live (simulated) fleet.

    This is the record the online executor historically kept as its
    private ``_OnlineVM``; lifted here so a fleet can outlive any one
    workflow run.  ``owner`` names the tenant whose submission rented
    the VM — the attribution key for per-tenant billing.
    """

    id: int
    itype: InstanceType
    started_at: float
    free_at: float
    busy_seconds: float = 0.0
    tasks: List[str] = field(default_factory=list)
    levels: set = field(default_factory=set)
    finished_at: float = 0.0
    dead: bool = False
    crashed: bool = False
    crashed_at: float = 0.0
    #: seconds of completed executions (fault accounting)
    useful_seconds: float = 0.0
    #: tenant whose workflow rented this VM ("" for single-run fleets)
    owner: str = ""
    #: how the VM was bought (a market ``PurchaseOption``); ``None``
    #: outside market runs — fixed-price on-demand billing
    purchase: object | None = None
    #: whether the crash was a spot reclamation (price crossing)
    preempted: bool = False
    #: whether the acquisition hit the warm pool (cold-start scenarios)
    booted_warm: bool = False

    def horizon(self, btu: float) -> float:
        """End of the last started BTU — deprovision time when idle."""
        uptime = max(self.free_at - self.started_at, 1e-9)
        return self.started_at + math.ceil(uptime / btu - 1e-9) * btu


@dataclass(frozen=True)
class OwnerBill:
    """Realized rent attributed to one owner (tenant)."""

    owner: str
    vm_count: int
    btus: int
    rent_cost: float
    busy_seconds: float
    paid_seconds: float


@dataclass(frozen=True)
class FleetRollup:
    """Everything the service loop needs from one roster pass:
    per-owner bills, fleet utilization and the billing totals."""

    bills: Dict[str, OwnerBill]
    utilization: float
    btus: int
    rent_cost: float


class FleetManager:
    """Owns a fleet of :class:`FleetVM` records shared across runs.

    One manager may back a single online run (the executor builds a
    private one by default — byte-identical to the pre-lift behavior)
    or a whole service loop, where per-workflow executors rent from and
    reuse the same live fleet.

    The manager also acts as the rental *ledger* for static
    :class:`~repro.core.builder.ScheduleBuilder` runs: a builder
    constructed with ``fleet=manager`` reports every ``new_vm`` through
    :meth:`on_builder_rent`, so static planning (e.g. the budget-guard
    admission estimate) is accounted per owner without the builder
    giving up its local VM indexing.

    With *indexed* (the default) the manager maintains the incremental
    structures described in the module docstring; ``indexed=False``
    preserves the original full-roster scans — same observable
    behavior, property-tested byte-identical — as the reference oracle.
    """

    def __init__(self, region: Region | None = None, indexed: bool = True) -> None:
        self.region = region
        self.indexed = indexed
        self.vms: List[FleetVM] = []
        #: executors (or any callables) notified when a VM crashes, so
        #: every run with work on the VM can recover its own tasks
        self._crash_listeners: List[Callable[[FleetVM], None]] = []
        #: notified at a spot reclamation *warning* (checkpoint hook)
        self._warning_listeners: List[Callable[[FleetVM], None]] = []
        #: warm-pool acquisitions consumed so far, by flavor name
        self.warm_used: Dict[str, int] = {}
        #: static-planning ledger: owner -> builder VM rentals
        self.static_rents: Dict[str, int] = {}
        #: the owner attributed builder rentals (and rentals made with
        #: no explicit owner); the service sets this around each run
        self.active_owner: str = ""
        # --- incremental fleet indexes (maintained in both modes, so
        # counters/liveness stay O(1) even on the reference path) ----
        #: ids of living VMs
        self._live: set = set()
        #: per-VM entry stamp; heap entries with an older stamp are
        #: dropped lazily on pop (the PR 4 busy-heap pattern)
        self._stamp: List[int] = []
        #: min-heap of (lower-bound horizon, id, stamp) — see reap()
        self._expiry: List[Tuple[float, int, int]] = []
        #: max-heap (negated) of (busy_seconds, -id) over live VMs
        self._rank: List[Tuple[float, int, int]] = []
        #: min-heap by free_at of live VMs not yet promoted to idle
        self._free_pool: List[Tuple[float, int, int]] = []
        #: max-heap (negated busy rank) of live VMs known idle
        self._idle_rank: List[Tuple[float, int, int]] = []
        # --- incremental tallies (counters()) -----------------------
        self.crashed_count = 0
        self.preempted_count = 0
        self.reaped_count = 0

    # ------------------------------------------------------------------
    # live-fleet lifecycle
    # ------------------------------------------------------------------
    def rent(
        self,
        itype: InstanceType,
        started_at: float,
        free_at: float,
        owner: str | None = None,
        purchase: object | None = None,
    ) -> FleetVM:
        """Create the next VM record; ids are fleet-global and dense."""
        vm = FleetVM(
            id=len(self.vms),
            itype=itype,
            started_at=started_at,
            free_at=free_at,
            owner=self.active_owner if owner is None else owner,
            purchase=purchase,
        )
        self.vms.append(vm)
        self._live.add(vm.id)
        self._stamp.append(0)
        if self.indexed:
            heapq.heappush(self._expiry, (vm.free_at, vm.id, 0))
            heapq.heappush(self._rank, (-vm.busy_seconds, vm.id, 0))
            heapq.heappush(self._free_pool, (vm.free_at, vm.id, 0))
        return vm

    def note_use(self, vm: FleetVM) -> None:
        """Re-index *vm* after a placement extended its ``free_at`` /
        ``busy_seconds``.  Executors call this for every reservation on
        a live VM (crash bookkeeping on dead VMs needs no note — death
        already invalidated every entry)."""
        if not self.indexed or vm.dead:
            return
        stamp = self._stamp[vm.id] + 1
        self._stamp[vm.id] = stamp
        # free_at never exceeds the BTU horizon, so it is a valid
        # expiry lower bound; reap() re-arms at the true horizon
        heapq.heappush(self._expiry, (vm.free_at, vm.id, stamp))
        heapq.heappush(self._rank, (-vm.busy_seconds, vm.id, stamp))
        heapq.heappush(self._free_pool, (vm.free_at, vm.id, stamp))

    def take_warm(self, itype: InstanceType, pool: int) -> bool:
        """Claim one warm-pool slot for a new *itype* acquisition.

        The pool is fleet-global (the provider keeps a few instances
        warm per flavor): the first *pool* acquisitions of each flavor
        across *all* runs sharing this manager boot warm.  Returns
        whether the claim succeeded.
        """
        if pool <= 0:
            return False
        used = self.warm_used.get(itype.name, 0)
        if used >= pool:
            return False
        self.warm_used[itype.name] = used + 1
        return True

    @property
    def live_count(self) -> int:
        """Number of living VMs (O(1))."""
        return len(self._live)

    def alive(self, owner: str | None = None) -> List[FleetVM]:
        """Living VMs in rental order; *owner* restricts to one tenant's
        rentals (tenant-scoped sharing)."""
        vms = self.vms
        live = [vms[i] for i in sorted(self._live)]
        if owner is None:
            return live
        return [vm for vm in live if vm.owner == owner]

    def _retire(self, vm: FleetVM, finished_at: float) -> None:
        """Mark *vm* dead at *finished_at* and invalidate its indexes
        (the single kill path shared by reap and crash)."""
        vm.dead = True
        vm.finished_at = finished_at
        self._live.discard(vm.id)
        self._stamp[vm.id] += 1

    def reap(self, now: float, btu: float) -> List[FleetVM]:
        """Mark VMs idle past their BTU horizon dead; returns the newly
        dead ones in roster order (callers record their own ``vm_stop``
        events).

        Indexed: pop the expiry heap while the top entry's lower bound
        has passed.  A popped entry whose VM is current (stamp match)
        but not expired — the lower bound was ``free_at`` or the VM is
        still inside its horizon — is re-armed at ``max(horizon,
        free_at)``, which stays a lower bound of any future expiry
        (reuse only pushes ``free_at``, hence the horizon, later).
        O(k log n) for k expired + stale entries, instead of the
        reference's O(fleet) scan.
        """
        if not self.indexed:
            return self.reap_reference(now, btu)
        reaped: List[FleetVM] = []
        heap = self._expiry
        stamps = self._stamp
        cutoff = now - _EPS
        while heap and heap[0][0] < cutoff:
            _, vid, stamp = heapq.heappop(heap)
            if stamp != stamps[vid]:
                continue  # superseded by reuse or death
            vm = self.vms[vid]
            horizon = vm.horizon(btu)
            if vm.free_at <= now and horizon < cutoff:
                self._retire(vm, vm.free_at)
                self.reaped_count += 1
                reaped.append(vm)
            else:
                # not expired: re-arm past the pop window (free_at > now
                # or horizon >= cutoff, so the key never re-pops now)
                heapq.heappush(heap, (max(horizon, vm.free_at), vid, stamp))
        if len(reaped) > 1:
            reaped.sort(key=lambda v: v.id)
        return reaped

    def reap_reference(self, now: float, btu: float) -> List[FleetVM]:
        """The original full-roster reap scan — the property-test
        oracle for :meth:`reap` (identical dead set, order, timing)."""
        reaped: List[FleetVM] = []
        for vm in self.vms:
            if not vm.dead and vm.free_at <= now and vm.horizon(btu) < now - _EPS:
                self._retire(vm, vm.free_at)
                self.reaped_count += 1
                reaped.append(vm)
        return reaped

    # ------------------------------------------------------------------
    # indexed candidate queries (the executors' placement hot path)
    # ------------------------------------------------------------------
    def max_busy_alive(self) -> Optional[FleetVM]:
        """The live VM maximizing ``(busy_seconds, -id)`` — the
        StartPar* reuse target — as a stale-skipping heap peek."""
        heap = self._rank
        stamps = self._stamp
        while heap:
            _, vid, stamp = heap[0]
            if stamp != stamps[vid]:
                heapq.heappop(heap)
                continue
            return self.vms[vid]
        return None

    def best_idle(
        self, now: float, fits: Callable[[FleetVM], bool] | None = None
    ) -> Optional[FleetVM]:
        """The idle live VM maximizing ``(busy_seconds, -id)`` that
        passes *fits* — the AllPar* candidate query.

        VMs migrate from the free-pool (ordered by ``free_at``) into
        the idle rank heap as the clock passes their reservations; a
        reuse bumps the stamp, so a reused VM's idle entry dies lazily.
        Entries rejected by *fits* stay idle and are pushed back.
        """
        pool, stamps = self._free_pool, self._stamp
        idle = self._idle_rank
        while pool and pool[0][0] <= now + _EPS:
            _, vid, stamp = heapq.heappop(pool)
            if stamp != stamps[vid]:
                continue
            vm = self.vms[vid]
            heapq.heappush(idle, (-vm.busy_seconds, vid, stamp))
        rejected: List[Tuple[float, int, int]] = []
        found: Optional[FleetVM] = None
        while idle:
            entry = heapq.heappop(idle)
            _, vid, stamp = entry
            if stamp != stamps[vid]:
                continue
            vm = self.vms[vid]
            if fits is not None and not fits(vm):
                rejected.append(entry)
                continue
            found = vm
            heapq.heappush(idle, entry)  # idle until its next reuse
            break
        for entry in rejected:
            heapq.heappush(idle, entry)
        return found

    def mark_crashed(self, vm: FleetVM, now: float) -> None:
        """Void a VM at *now*; reservations are reclaimed by listeners."""
        vm.crashed = True
        vm.crashed_at = now
        self._retire(vm, now)
        self.crashed_count += 1

    # ------------------------------------------------------------------
    # crash fan-out (shared fleets host tasks of many runs)
    # ------------------------------------------------------------------
    def add_crash_listener(self, listener: Callable[[FleetVM], None]) -> None:
        self._crash_listeners.append(listener)

    def notify_crash(self, vm: FleetVM) -> None:
        """Let every attached run reclaim its victims on *vm* (in
        attachment order, so recovery interleaving is deterministic)."""
        if vm.preempted:
            self.preempted_count += 1
        for listener in self._crash_listeners:
            listener(vm)

    def add_warning_listener(self, listener: Callable[[FleetVM], None]) -> None:
        self._warning_listeners.append(listener)

    def notify_warning(self, vm: FleetVM) -> None:
        """Fan a spot reclamation warning out to every attached run, so
        each can checkpoint its own work on *vm* before the kill."""
        for listener in self._warning_listeners:
            listener(vm)

    # ------------------------------------------------------------------
    # static-builder ledger
    # ------------------------------------------------------------------
    def on_builder_rent(self, builder, vm) -> None:
        """Record one static ``ScheduleBuilder.new_vm`` rental.

        Called by builders constructed with ``fleet=manager``; the VM
        record stays local to the builder (static schedules all start
        at t=0, so cross-run reuse is meaningless there), only the
        accounting is shared.
        """
        owner = self.active_owner
        self.static_rents[owner] = self.static_rents.get(owner, 0) + 1

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def uptime(self, vm: FleetVM) -> float:
        """Billable uptime: rent stops at the crash for crashed VMs."""
        end = vm.crashed_at if vm.crashed else vm.free_at
        return max(end - vm.started_at, 0.0)

    def counters(self) -> Dict[str, int]:
        """O(1) fleet tallies, maintained incrementally (no roster
        scan): total rentals, live/crashed/preempted/reaped counts."""
        return {
            "vms": len(self.vms),
            "alive": len(self._live),
            "crashed": self.crashed_count,
            "preempted": self.preempted_count,
            "reaped": self.reaped_count,
        }

    def finalize(
        self,
        billing: BillingModel,
        region: Region | None = None,
        market: object | None = None,
        seed: int = 0,
        check: bool = True,
    ) -> FleetRollup:
        """Bills, utilization and conservation in **one** roster pass.

        The original service finish walked the (mostly dead) roster
        three times — ``check_conservation``, ``bill`` and two sums in
        ``utilization``.  This compacts them into a single pass with
        identical accumulation order, so every float comes out
        bit-equal to the multi-pass originals (a property the identity
        tests pin).
        """
        region = region or self.region
        if region is None and self.vms:
            raise SimulationError("bill() needs a region (none configured)")
        rows: Dict[str, Dict[str, float]] = {}
        busy_total = 0.0
        paid_total = 0.0
        for idx, vm in enumerate(self.vms):
            if check:
                if vm.id != idx:
                    raise SimulationError(
                        f"fleet ids not dense: vm{vm.id} at slot {idx}"
                    )
                if vm.crashed and not vm.dead:
                    raise SimulationError(f"vm{vm.id} crashed but not dead")
                if vm.free_at < vm.started_at - _EPS:
                    raise SimulationError(
                        f"vm{vm.id} freed at {vm.free_at} before start "
                        f"{vm.started_at}"
                    )
            up = self.uptime(vm)
            paid = billing.paid_seconds(up)
            if market is not None and vm.purchase is not None:
                cost = market.vm_cost(
                    billing, seed, vm.started_at, up, vm.itype, region, vm.purchase
                )
            else:
                cost = billing.btus(up) * region.price(vm.itype)
            acc = rows.setdefault(
                vm.owner,
                {"vms": 0, "btus": 0, "cost": 0.0, "busy": 0.0, "paid": 0.0},
            )
            acc["vms"] += 1
            acc["btus"] += billing.btus(up)
            acc["cost"] += cost
            acc["busy"] += vm.busy_seconds
            acc["paid"] += paid
            busy_total += vm.busy_seconds
            paid_total += paid
        bills = {
            owner: OwnerBill(
                owner=owner,
                vm_count=int(acc["vms"]),
                btus=int(acc["btus"]),
                rent_cost=acc["cost"],
                busy_seconds=acc["busy"],
                paid_seconds=acc["paid"],
            )
            for owner, acc in sorted(rows.items())
        }
        return FleetRollup(
            bills=bills,
            utilization=busy_total / paid_total if paid_total > 0 else 0.0,
            btus=sum(b.btus for b in bills.values()),
            rent_cost=sum(b.rent_cost for b in bills.values()),
        )

    def bill(
        self,
        billing: BillingModel,
        region: Region | None = None,
        market: object | None = None,
        seed: int = 0,
    ) -> Dict[str, OwnerBill]:
        """Per-owner realized rent over the whole fleet.

        Each VM's cost goes to the tenant that rented it (reuse by
        another tenant's tasks extends ``busy_seconds`` but never moves
        the bill — the renter keeps the meter).  With a *market* (a
        :class:`~repro.market.spot.Market`), VMs carrying a purchase
        option are billed at the realized price integral under *seed*;
        all others keep the fixed-price arithmetic.
        """
        region = region or self.region
        if region is None:
            raise SimulationError("bill() needs a region (none configured)")
        return self.finalize(
            billing, region, market=market, seed=seed, check=False
        ).bills

    def utilization(self, billing: BillingModel) -> float:
        """Busy seconds over paid seconds across the fleet (0 when the
        fleet never rented anything) — one roster pass."""
        busy = 0.0
        paid = 0.0
        for vm in self.vms:
            busy += vm.busy_seconds
            paid += billing.paid_seconds(self.uptime(vm))
        if paid <= 0:
            return 0.0
        return busy / paid

    # ------------------------------------------------------------------
    # invariants (used by the test harness and the service loop)
    # ------------------------------------------------------------------
    def check_conservation(self) -> None:
        """Raise :class:`SimulationError` unless fleet bookkeeping is
        conserved: dense ids, crashed ⊆ dead, and no VM freed before it
        started."""
        for idx, vm in enumerate(self.vms):
            if vm.id != idx:
                raise SimulationError(f"fleet ids not dense: vm{vm.id} at slot {idx}")
            if vm.crashed and not vm.dead:
                raise SimulationError(f"vm{vm.id} crashed but not dead")
            if vm.free_at < vm.started_at - _EPS:
                raise SimulationError(
                    f"vm{vm.id} freed at {vm.free_at} before start {vm.started_at}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FleetManager(vms={len(self.vms)}, alive={len(self._live)})"


#: the owner attributed to VMs rented outside any tenant context
DEFAULT_OWNER = ""


def private_fleet(region: Region | None = None) -> FleetManager:
    """A fresh single-run manager (the pre-lift behavior)."""
    return FleetManager(region=region)
