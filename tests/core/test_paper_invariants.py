"""The paper's stated boundary properties and cross-cutting invariants
(DESIGN.md Sect. 6), checked across all strategies and random shapes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.baseline import reference_schedule
from repro.experiments.config import paper_strategies
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workloads.uniform import BestCaseModel, WorstCaseModel
from repro.workflows.generators import (
    cstem,
    mapreduce,
    montage,
    random_layered,
    sequential,
)


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


def _same_outcome(a, b):
    assert a.makespan == pytest.approx(b.makespan)
    assert a.total_cost == pytest.approx(b.total_cost)
    assert a.total_idle_seconds == pytest.approx(b.total_idle_seconds)


class TestBestCaseDegeneracies:
    """Paper IV-B: best case => StartParNotExceed == StartParExceed and
    AllParNotExceed == AllParExceed."""

    def test_startpar_equal(self, platform, paper_workflow):
        wf = apply_model(paper_workflow, BestCaseModel())
        ne = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        ex = HeftScheduler("StartParExceed").schedule(wf, platform)
        _same_outcome(ne, ex)

    def test_allpar_equal(self, platform, paper_workflow):
        wf = apply_model(paper_workflow, BestCaseModel())
        ne = AllParScheduler(exceed=False).schedule(wf, platform)
        ex = AllParScheduler(exceed=True).schedule(wf, platform)
        _same_outcome(ne, ex)

    def test_sequential_provisioning_costs_one_btu(self, platform):
        """n tasks x e with n*e <= BTU: the whole chain fits 1 BTU."""
        wf = apply_model(sequential(10), BestCaseModel())
        sched = HeftScheduler("StartParExceed").schedule(wf, platform)
        assert sched.total_btus == 1
        assert sched.total_cost == pytest.approx(0.08)

    def test_parallel_provisioning_costs_n_btus(self, platform):
        wf = apply_model(mapreduce(), BestCaseModel())
        sched = HeftScheduler("OneVMperTask").schedule(wf, platform)
        assert sched.total_btus == len(wf)


class TestWorstCaseDegeneracies:
    """Paper IV-B: worst case => StartParNotExceed == AllParNotExceed ==
    OneVMperTask (every NotExceed rents per task)."""

    def test_notexceed_policies_equal_onevm(self, platform, paper_workflow):
        wf = apply_model(paper_workflow, WorstCaseModel())
        one = HeftScheduler("OneVMperTask").schedule(wf, platform)
        spn = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        apn = AllParScheduler(exceed=False).schedule(wf, platform)
        for other in (spn, apn):
            assert other.vm_count == one.vm_count == len(wf)
            assert other.total_cost == pytest.approx(one.total_cost)
        assert spn.makespan == pytest.approx(one.makespan)

    def test_sequential_provisioning_cost_formula(self, platform):
        """cost = ceil(n*e/BTU) BTUs for sequential provisioning."""
        import math

        n, e = 4, 2.8 * 3600.0
        wf = apply_model(sequential(n), WorstCaseModel())
        sched = HeftScheduler("StartParExceed").schedule(wf, platform)
        assert sched.total_btus == math.ceil(n * e / 3600.0)

    def test_parallel_provisioning_cost_formula(self, platform):
        """cost = n * ceil(e/BTU) BTUs for parallel provisioning."""
        import math

        wf = apply_model(mapreduce(mappers=4, reducers=1), WorstCaseModel())
        sched = HeftScheduler("OneVMperTask").schedule(wf, platform)
        assert sched.total_btus == len(wf) * math.ceil(2.8 * 3600.0 / 3600.0)


class TestAllStrategiesAllWorkflows:
    """Every Figure-4 strategy yields a valid, DES-replayable schedule
    with coherent accounting, for every paper workflow and scenario."""

    @pytest.mark.parametrize("spec", paper_strategies(), ids=lambda s: s.label)
    def test_pareto_scenario(self, spec, platform, paper_workflow):
        wf = apply_model(paper_workflow, ParetoModel(), seed=42)
        sched = spec.run(wf, platform)
        sched.validate()
        simulate_schedule(sched, check=True)
        billing = platform.billing
        # accounting coherence
        assert sched.total_idle_seconds >= -1e-6
        paid = sum(vm.paid_seconds(billing) for vm in sched.vms)
        busy = sum(vm.busy_seconds for vm in sched.vms)
        assert paid >= busy - 1e-6
        assert sched.total_idle_seconds == pytest.approx(paid - busy)
        assert sched.rent_cost > 0

    @pytest.mark.parametrize(
        "spec",
        [s for s in paper_strategies() if s.label.endswith("-s")],
        ids=lambda s: s.label,
    )
    def test_small_strategies_never_cost_more_than_reference(
        self, spec, platform, paper_workflow
    ):
        """On small instances every reuse policy is at most as expensive
        as OneVMperTask-small (reuse only merges BTUs)."""
        wf = apply_model(paper_workflow, ParetoModel(), seed=7)
        ref = reference_schedule(wf, platform)
        sched = spec.run(wf, platform)
        assert sched.total_cost <= ref.total_cost + 1e-9


class TestRandomWorkflowProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), wf_seed=st.integers(0, 10_000))
    def test_all_policies_valid_on_random_dags(self, seed, wf_seed, ):
        platform = CloudPlatform.ec2()
        shape = random_layered(layers=4, seed=wf_seed)
        wf = apply_model(shape, ParetoModel(), seed=seed)
        for policy in ("OneVMperTask", "StartParNotExceed", "StartParExceed"):
            sched = HeftScheduler(policy).schedule(wf, platform)
            sched.validate()
            simulate_schedule(sched, check=True)
        for exceed in (True, False):
            sched = AllParScheduler(exceed=exceed).schedule(wf, platform)
            sched.validate()
            simulate_schedule(sched, check=True)

    @settings(max_examples=15, deadline=None)
    @given(wf_seed=st.integers(0, 10_000))
    def test_startpar_exceed_uses_fewer_or_equal_vms(self, wf_seed):
        """The paper's explicit claim: StartParNotExceed "allocates more
        VMs" than StartParExceed. (The analogous ordering does NOT hold
        universally for the AllPar pair under BTU-boundary liveness:
        NotExceed's later rentals can stay alive for downstream reuse
        and end up with a *smaller* fleet on adversarial shapes.)"""
        platform = CloudPlatform.ec2()
        wf = apply_model(
            random_layered(layers=4, seed=wf_seed), ParetoModel(), seed=wf_seed
        )
        spn = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        spx = HeftScheduler("StartParExceed").schedule(wf, platform)
        assert spx.vm_count <= spn.vm_count

    @settings(max_examples=10, deadline=None)
    @given(wf_seed=st.integers(0, 10_000))
    def test_makespan_at_least_critical_path(self, wf_seed):
        """No schedule can beat the critical path on the fastest type."""
        platform = CloudPlatform.ec2()
        wf = apply_model(
            random_layered(layers=4, seed=wf_seed), ParetoModel(), seed=wf_seed
        )
        _, cp = wf.critical_path()
        lower_bound = cp / 2.7  # everything on xlarge, no transfers
        for spec in paper_strategies():
            sched = spec.run(wf, platform)
            assert sched.makespan >= lower_bound - 1e-6


class TestFigure1Narrative:
    """Sect. III-A's qualitative comparison on the Fig. 1 sub-workflow."""

    def test_onevm_most_expensive_most_idle(self, platform, fan7):
        one = HeftScheduler("OneVMperTask").schedule(fan7, platform)
        spx = HeftScheduler("StartParExceed").schedule(fan7, platform)
        apx = AllParScheduler(exceed=True).schedule(fan7, platform)
        assert one.total_cost >= max(spx.total_cost, apx.total_cost)
        assert one.total_idle_seconds >= spx.total_idle_seconds
        assert one.total_idle_seconds >= apx.total_idle_seconds

    def test_startparexceed_cheapest(self, platform, fan7):
        """StartParExceed minimizes cost (paper Table I narrative)."""
        spx = HeftScheduler("StartParExceed").schedule(fan7, platform)
        others = [
            HeftScheduler("OneVMperTask").schedule(fan7, platform),
            HeftScheduler("StartParNotExceed").schedule(fan7, platform),
            AllParScheduler(exceed=True).schedule(fan7, platform),
            AllParScheduler(exceed=False).schedule(fan7, platform),
        ]
        assert spx.total_cost <= min(o.total_cost for o in others) + 1e-9

    def test_allpar_exploits_parallelism(self, platform, fan7):
        apx = AllParScheduler(exceed=True).schedule(fan7, platform)
        spx = HeftScheduler("StartParExceed").schedule(fan7, platform)
        assert apx.makespan < spx.makespan

    def test_startparnotexceed_not_slower_than_exceed(self, platform, fan7):
        ne = HeftScheduler("StartParNotExceed").schedule(fan7, platform)
        ex = HeftScheduler("StartParExceed").schedule(fan7, platform)
        assert ne.makespan <= ex.makespan + 1e-9
        assert ne.vm_count >= ex.vm_count
