"""Tests for the sweep runner."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.baseline import reference_schedule
from repro.errors import ExperimentError
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.runner import SweepResult, run_strategy, run_sweep
from repro.experiments.scenarios import scenario
from repro.workflows.generators import sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.fixture(scope="module")
def small_sweep(platform):
    """A reduced sweep: 2 workflows x 2 scenarios x 3 strategies."""
    return run_sweep(
        platform=platform,
        workflows={"seq": sequential(6), "montage": paper_workflows()["montage"]},
        scenarios=[scenario("pareto", platform), scenario("best", platform)],
        strategies=[
            strategy("OneVMperTask-s"),
            strategy("StartParExceed-s"),
            strategy("AllPar1LnS"),
        ],
        seed=99,
        verify=True,
    )


class TestRunStrategy:
    def test_metrics_against_reference(self, platform):
        wf = sequential(4)
        ref = reference_schedule(wf, platform)
        m = run_strategy(strategy("StartParExceed-s"), wf, platform, reference=ref)
        assert m.label == "StartParExceed-s"
        assert m.savings_pct > 0

    def test_reference_computed_when_missing(self, platform):
        wf = sequential(4)
        m = run_strategy(strategy("OneVMperTask-s"), wf, platform)
        assert m.gain_pct == pytest.approx(0.0)
        assert m.loss_pct == pytest.approx(0.0)

    def test_verify_path(self, platform):
        wf = sequential(4)
        m = run_strategy(strategy("AllPar1LnS"), wf, platform, verify=True)
        assert m.makespan > 0


class TestRunSweep:
    def test_grid_complete(self, small_sweep):
        assert small_sweep.scenarios() == ["pareto", "best"]
        for sc in small_sweep.scenarios():
            assert small_sweep.workflows(sc) == ["seq", "montage"]
            for wf in small_sweep.workflows(sc):
                assert len(small_sweep.strategies(sc, wf)) == 3

    def test_reference_rows_present(self, small_sweep):
        ref = small_sweep.references["pareto"]["montage"]
        assert ref.gain_pct == 0.0 and ref.loss_pct == 0.0

    def test_get_and_rows(self, small_sweep):
        m = small_sweep.get("pareto", "seq", "StartParExceed-s")
        assert m.label == "StartParExceed-s"
        assert len(small_sweep.rows()) == 2 * 2 * 3

    def test_get_unknown(self, small_sweep):
        with pytest.raises(ExperimentError):
            small_sweep.get("pareto", "seq", "Turbo")

    def test_reproducible(self, platform):
        kwargs = dict(
            platform=platform,
            workflows={"seq": sequential(5)},
            scenarios=[scenario("pareto", platform)],
            strategies=[strategy("OneVMperTask-s")],
            seed=5,
        )
        a = run_sweep(**kwargs)
        b = run_sweep(**kwargs)
        assert (
            a.get("pareto", "seq", "OneVMperTask-s").makespan
            == b.get("pareto", "seq", "OneVMperTask-s").makespan
        )

    def test_same_cell_shares_draw_across_strategies(self, small_sweep):
        """Both strategies saw the same Pareto instance: the reference
        makespan implied by gain=0 is consistent."""
        one = small_sweep.get("pareto", "montage", "OneVMperTask-s")
        assert one.gain_pct == pytest.approx(0.0)
        assert one.loss_pct == pytest.approx(0.0)

    def test_empty_axis_rejected(self, platform):
        with pytest.raises(ExperimentError):
            run_sweep(platform=platform, workflows={}, seed=1)
