"""Ablation: billing granularity — the premise behind the whole study.

Provisioning policies only matter because clouds billed whole hours in
2012: the BTU tail is what reuse saves.  This bench re-runs the key
policies under BTU = 3600 s (the paper), 600 s, 60 s and 1 s (modern
per-second billing): the cost spread between OneVMperTask and
StartParExceed collapses as the quantum shrinks, dissolving the paper's
trade-off space.
"""

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.cloud.billing import BillingModel
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import EC2_REGIONS, Region
from repro.core.allocation.heft import HeftScheduler
from repro.experiments.scenarios import scenario
from repro.util.tables import format_table
from repro.workflows.generators import montage

BTUS = (3600.0, 600.0, 60.0, 1.0)
POLICIES = ("OneVMperTask", "StartParNotExceed", "StartParExceed")


def _platform_with_btu(btu: float) -> CloudPlatform:
    """EC2 with quantum *btu* at the same $/second as Table II: prices
    are per BTU, so they scale with the quantum."""
    factor = btu / 3600.0
    regions = {
        name: Region(
            name=r.name,
            prices={k: v * factor for k, v in r.prices.items()},
            transfer_out_per_gb=r.transfer_out_per_gb,
        )
        for name, r in EC2_REGIONS.items()
    }
    return CloudPlatform(
        regions=regions,
        default_region=regions["us-east-virginia"],
        billing=BillingModel(btu_seconds=btu),
    )


def _study(base_platform):
    wf = scenario("pareto", base_platform).apply(montage(), SWEEP_SEED)
    rows = []
    for btu in BTUS:
        platform = _platform_with_btu(btu)
        costs = {}
        for policy in POLICIES:
            sched = HeftScheduler(policy).schedule(wf, platform)
            costs[policy] = sched.total_cost
        spread = costs["OneVMperTask"] / costs["StartParExceed"]
        rows.append((f"{btu:.0f}s", *[costs[p] for p in POLICIES], spread))
    return rows


def test_btu_granularity_ablation(benchmark, platform, artifact_dir):
    rows = benchmark(_study, platform)

    # hour billing: spreading costs several times the packed plan
    assert rows[0][-1] > 2.0
    # per-second billing: the gap nearly vanishes (only transfer waits
    # and BTU minimums remain)
    assert rows[-1][-1] < 1.2
    # the spread shrinks monotonically with the quantum
    spreads = [r[-1] for r in rows]
    assert spreads == sorted(spreads, reverse=True)
    # every policy gets cheaper (or equal) as billing gets finer
    for col in range(1, 4):
        costs = [r[col] for r in rows]
        assert costs == sorted(costs, reverse=True)

    save_artifact(
        artifact_dir,
        "ablation_btu.txt",
        format_table(
            ["BTU", *POLICIES, "spread"],
            rows,
            float_fmt=".3f",
            title="Billing-granularity ablation (Montage, Pareto): cost per policy",
        ),
    )
