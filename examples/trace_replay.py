#!/usr/bin/env python
"""Replaying a real-ish workload trace (Feitelson archive SWF format).

Builds a small SWF trace inline (the archive's 18-field format), samples
task runtimes from its empirical distribution onto the Montage shape,
schedules it under several strategies, and reports each schedule's
distance from the physical makespan/cost lower bounds.

With a downloaded trace, replace the inline text with
``SwfTraceModel.from_file("LANL-CM5-1994-4.1-cln.swf")``.

Run:  python examples/trace_replay.py
"""

from repro import (
    AllParScheduler,
    CloudPlatform,
    HeftScheduler,
    apply_model,
    efficiency,
    montage,
)
from repro.util.tables import format_table
from repro.workloads.swf import SwfTraceModel, bag_from_swf, parse_swf

# A toy trace: job_id submit wait RUNTIME procs ... STATUS ... (18 fields)
_TRACE = "\n".join(
    f"{i} {i * 10} 0 {runtime} 1 -1 -1 1 7200 -1 1 1 1 1 1 -1 -1 -1"
    for i, runtime in enumerate(
        (620, 850, 1100, 1400, 330, 2800, 760, 1900, 540, 3100,
         450, 980, 1250, 2200, 700, 1600, 880, 2600, 510, 1150),
        start=1,
    )
)


def main() -> None:
    platform = CloudPlatform.ec2()
    jobs = parse_swf(_TRACE)
    print(f"parsed {len(jobs)} SWF jobs; runtimes "
          f"{min(j.runtime for j in jobs):.0f}-{max(j.runtime for j in jobs):.0f} s")

    # 1. The trace as a bag-of-tasks (how the archive's jobs actually ran).
    bag = bag_from_swf(jobs)
    bag_sched = AllParScheduler(exceed=True).schedule(bag, platform)
    print(f"\nbag-of-tasks replay: {bag_sched.vm_count} VMs, "
          f"makespan {bag_sched.makespan:.0f} s, cost ${bag_sched.total_cost:.2f}")

    # 2. The trace's runtime distribution imposed on a workflow shape.
    model = SwfTraceModel(jobs)
    workflow = apply_model(montage(), model, seed=2013)
    rows = []
    for label, algo in (
        ("OneVMperTask-s", HeftScheduler("OneVMperTask")),
        ("StartParNotExceed-s", HeftScheduler("StartParNotExceed")),
        ("StartParExceed-s", HeftScheduler("StartParExceed")),
        ("AllParExceed-s", AllParScheduler(exceed=True)),
    ):
        sched = algo.schedule(workflow, platform)
        report = efficiency(sched)
        rows.append(
            (
                label,
                sched.makespan,
                report.makespan_ratio,
                sched.total_cost,
                report.cost_ratio,
            )
        )
    print()
    print(
        format_table(
            ["strategy", "makespan s", "x optimal", "cost $", "x optimal"],
            rows,
            title="Montage with trace-sampled runtimes, vs physical lower bounds",
        )
    )
    print(
        "\n'x optimal' = measured / lower bound (critical path on xlarge; "
        "total work at the best $/work-second)."
    )


if __name__ == "__main__":
    main()
