"""HCOC-style hybrid-cloud scheduling (Bittencourt & Madeira).

The paper's related work singles out HCOC: schedule on the *private*
cluster first (PCH clustering), and when the makespan misses the
deadline, move whole clusters out to rented *public* VMs until it fits.
This implementation follows that loop:

1. PCH clusters share a fixed pool of free private VMs (round-robin);
2. while the makespan exceeds the deadline, the cluster holding the
   highest-upward-rank still-private task is promoted to its own public
   VM of ``public_itype`` (in the platform's default paid region);
3. stop when the deadline holds, or every cluster is public
   (``best_effort``) / raise otherwise.

Cost is the public rent only — the private cluster is owned (a
zero-price :func:`repro.cloud.region.private_region`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region, private_region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.pch import pch_clusters
from repro.core.allocation.ranking import upward_rank
from repro.core.builder import ScheduleBuilder
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


@register_algorithm
class HcocScheduler(SchedulingAlgorithm):
    name = "HCOC"
    heterogeneous = True

    def __init__(
        self,
        deadline: float = float("inf"),
        private_pool: int = 2,
        private_itype: str = "small",
        public_itype: str = "large",
        best_effort: bool = False,
    ) -> None:
        if deadline <= 0:
            raise SchedulingError(f"deadline must be positive, got {deadline}")
        if private_pool < 1:
            raise SchedulingError(f"private_pool must be >= 1, got {private_pool}")
        self.deadline = deadline
        self.private_pool = private_pool
        self.private_itype = private_itype
        self.public_itype = public_itype
        self.best_effort = best_effort

    # ------------------------------------------------------------------
    def _build(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        clusters: List[List[str]],
        public: List[bool],
        owned: Region,
        paid: Region,
    ) -> Schedule:
        priv_type = platform.itype(self.private_itype)
        pub_type = platform.itype(self.public_itype)
        builder = ScheduleBuilder(workflow, platform, priv_type, owned)
        pool = [
            builder.new_vm(priv_type, owned)
            for _ in range(min(self.private_pool, len(clusters)))
        ]
        vm_of_cluster: Dict[int, object] = {}
        private_seen = 0
        for i in range(len(clusters)):
            if public[i]:
                vm_of_cluster[i] = builder.new_vm(pub_type, paid)
            else:
                vm_of_cluster[i] = pool[private_seen % len(pool)]
                private_seen += 1
        cluster_of = {
            tid: i for i, path in enumerate(clusters) for tid in path
        }
        for tid in workflow.topological_order():
            builder.begin_task(tid)
            builder.place(tid, vm_of_cluster[cluster_of[tid]])
        return builder.build(algorithm=self.name, provisioning="HCOC")

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        owned = private_region()
        if owned.name not in platform.regions:
            platform = CloudPlatform(
                regions={**dict(platform.regions), owned.name: owned},
                default_region=platform.default_region,
                billing=platform.billing,
                network=platform.network,
                catalog=platform.catalog,
                boot_seconds=platform.boot_seconds,
                prebooted=platform.prebooted,
            )
        paid = region or platform.default_region
        priv_type = platform.itype(self.private_itype)
        clusters = pch_clusters(workflow, platform, priv_type)
        ranks = upward_rank(workflow, platform, priv_type)
        public = [False] * len(clusters)

        # Promotion order: cluster holding the highest-rank private task
        # first — the HCOC "take the critical work to the cloud" move.
        promotion_order = sorted(
            range(len(clusters)),
            key=lambda i: (-max(ranks[t] for t in clusters[i]), i),
        )

        sched = self._build(workflow, platform, clusters, public, owned, paid)
        for idx in promotion_order:
            if sched.makespan <= self.deadline + 1e-9:
                break
            public[idx] = True
            sched = self._build(workflow, platform, clusters, public, owned, paid)
        if sched.makespan > self.deadline + 1e-9 and not self.best_effort:
            raise SchedulingError(
                f"HCOC cannot meet deadline {self.deadline:.0f}s even fully "
                f"public (makespan {sched.makespan:.0f}s)"
            )
        return sched.validate()
