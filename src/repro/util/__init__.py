"""Small shared utilities: seeded RNG handling, interval algebra, text
tables and ASCII plotting used by the experiment harness."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.intervals import Interval, IntervalSet
from repro.util.tables import format_table
from repro.util.ascii_plot import ascii_scatter, ascii_bars

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Interval",
    "IntervalSet",
    "format_table",
    "ascii_scatter",
    "ascii_bars",
]
