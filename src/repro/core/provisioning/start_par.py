"""StartPar[Not]Exceed: parallelism only for the workflow's *initial*
tasks (paper Sect. III-A).

Every entry task gets its own VM; every other task is packed, in
allocation order, onto "the VM with the largest execution time".  The
*NotExceed* variant rents a fresh VM instead when the task would push
that VM past its currently-paid BTUs; the *Exceed* variant never rents
for that reason — so a workflow with a single entry task ends up
entirely serialized on one VM (the paper's CSTEM remark).

``try_all_vms`` (off by default, see DESIGN.md) lets NotExceed scan the
remaining VMs in decreasing execution time before renting.

Implementation: the historical kernel re-filtered and re-sorted the
whole fleet per task (see
:class:`~repro.core.provisioning.reference.StartParExceedReference`,
the preserved oracle); this version reads the builder's busy-seconds
heap — O(log V) amortized per placement, byte-identical schedules
(property-tested).
"""

from __future__ import annotations

from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.core.provisioning.base import ProvisioningPolicy, register_policy


class _StartParBase(ProvisioningPolicy):
    exceed_btu: bool = True
    try_all_vms: bool = False

    def select_vm(self, task_id: str, builder: ScheduleBuilder) -> BuilderVM:
        metrics = builder.metrics
        if builder.is_entry(task_id):
            if metrics is not None:
                metrics.inc("provision.rent")
            return builder.new_vm()
        # Only VMs still alive when the task could start are reusable:
        # idle VMs are deprovisioned at their BTU boundary.
        target = builder.busiest_reusable(task_id)
        if target is None:
            if metrics is not None:
                metrics.inc("provision.rent")
            return builder.new_vm()
        if self.exceed_btu or builder.fits_in_btu(task_id, target):
            if metrics is not None:
                metrics.inc("provision.reuse_pool")
            return target
        if self.try_all_vms:
            fallback = builder.busiest_fitting(task_id, exclude=target)
            if fallback is not None:
                if metrics is not None:
                    metrics.inc("provision.reuse_pool")
                return fallback
        if metrics is not None:
            metrics.inc("provision.rent")
        return builder.new_vm()


@register_policy
class StartParNotExceed(_StartParBase):
    name = "StartParNotExceed"
    exceed_btu = False

    def __init__(self, try_all_vms: bool = False) -> None:
        self.try_all_vms = try_all_vms


@register_policy
class StartParExceed(_StartParBase):
    name = "StartParExceed"
    exceed_btu = True
