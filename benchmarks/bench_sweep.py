"""Sweep throughput benchmark: serial vs parallel full paper grid.

Times ``run_sweep`` over the complete evaluation grid (4 workflows x 3
scenarios x 19 strategies) with the serial backend and with a parallel
one, checks the two produce identical metrics, and persists the numbers
to ``BENCH_sweep.json`` at the repo root so the performance trajectory
is tracked across PRs (``make bench`` refreshes it).

``--check`` is the parallel-dispatch regression gate (wired into ``make
bench-check``): it re-runs the measurement without rewriting the
baseline and fails when the parallel sweep diverges from the serial one
or, on a multi-core host, when the process backend is more than 10%
slower than serial.  On a single-core host the speedup is recorded but
not gated — there is no parallelism to win, only fork overhead the
shard-aware dispatch avoids.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_sweep.py --check
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path

from repro.experiments.config import paper_strategies, paper_workflows
from repro.experiments.parallel import make_backend
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import paper_scenarios

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"
HISTORY = REPO_ROOT / "BENCH_history.jsonl"
SWEEP_SEED = 2013


def _flatten(sweep):
    return {
        (sc, wf, label): dataclasses.asdict(m)
        for sc, wf, label, m in sweep.rows()
    }


def _best_of(repeats: int, fn):
    """Best (minimum) wall-clock of *repeats* runs, plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench(jobs: int, backend_name: str, repeats: int, seed: int) -> dict:
    serial_s, serial_sweep = _best_of(
        repeats, lambda: run_sweep(seed=seed, backend="serial")
    )
    backend = make_backend(backend_name, jobs)
    parallel_s, parallel_sweep = _best_of(
        repeats, lambda: run_sweep(seed=seed, backend=backend)
    )
    identical = _flatten(serial_sweep) == _flatten(parallel_sweep)

    platform = serial_sweep.platform
    return {
        "benchmark": "full paper sweep (run_sweep, default grid)",
        "seed": seed,
        "grid": {
            "scenarios": len(paper_scenarios(platform)),
            "workflows": len(paper_workflows()),
            "strategies": len(paper_strategies()),
            "cells": len(paper_scenarios(platform)) * len(paper_workflows()),
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "repeats_best_of": repeats,
        "serial_seconds": round(serial_s, 4),
        "parallel": {
            "backend": backend.describe(),
            "jobs": jobs,
            "seconds": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 3),
        },
        "parallel_identical_to_serial": identical,
    }


#: --check fails on a multi-core host when process is slower than this
#: fraction of serial throughput
MIN_SPEEDUP = 0.9


def check(jobs: int, backend_name: str, repeats: int, seed: int) -> int:
    """Parallel-dispatch gate: identity always, speedup when cores exist."""
    record = bench(jobs, backend_name, repeats, seed)
    par = record["parallel"]
    cpus = record["machine"]["cpu_count"]
    print(
        f"serial {record['serial_seconds']:.2f}s | "
        f"{par['backend']} {par['seconds']:.2f}s | "
        f"speedup {par['speedup']:.2f}x on {cpus} cpu(s) | "
        f"identical={record['parallel_identical_to_serial']}"
    )
    failures = []
    if not record["parallel_identical_to_serial"]:
        failures.append("parallel sweep diverged from serial")
    if (cpus or 1) >= 2 and par["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"process backend {par['speedup']:.2f}x serial "
            f"(gate {MIN_SPEEDUP:.2f}x on {cpus} cpus)"
        )
    if failures:
        print("\nparallel dispatch gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    if (cpus or 1) < 2:
        print("single core: speedup recorded, not gated")
    print("parallel dispatch gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        # at least 2 so the pool path is really exercised even on a
        # single-core box (where the speedup column then honestly
        # records the fan-out overhead)
        default=max(2, min(4, os.cpu_count() or 1)),
        help="parallel worker count (default clamp(cpu_count, 2, 4))",
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="process",
        help="parallel backend to benchmark against serial",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=SWEEP_SEED)
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate identity + multi-core speedup instead of rewriting the baseline",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check(args.jobs, args.backend, args.repeats, args.seed)

    record = bench(args.jobs, args.backend, args.repeats, args.seed)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    par = record["parallel"]
    # append-only trajectory log, one dated row per benchmark run
    with HISTORY.open("a") as fh:
        fh.write(
            json.dumps(
                {
                    "date": datetime.date.today().isoformat(),
                    "benchmark": "sweep",
                    "serial_seconds": record["serial_seconds"],
                    "parallel_seconds": par["seconds"],
                    "backend": par["backend"],
                    "speedup": par["speedup"],
                    "identical": record["parallel_identical_to_serial"],
                }
            )
            + "\n"
        )
    print(
        f"serial {record['serial_seconds']:.2f}s | "
        f"{par['backend']} {par['seconds']:.2f}s | "
        f"speedup {par['speedup']:.2f}x on {record['machine']['cpu_count']} cpu(s) | "
        f"identical={record['parallel_identical_to_serial']}"
    )
    print(f"wrote {args.out}")
    return 0 if record["parallel_identical_to_serial"] else 1


if __name__ == "__main__":
    sys.exit(main())
