"""Tests for repro.obs.metrics: counters, deterministic merging and the
ambient (contextvars) activation used by the builder hot paths."""

import json
import threading

from repro.obs.metrics import MetricsRegistry, current


class TestCounters:
    def test_inc_and_get(self):
        m = MetricsRegistry()
        m.inc("vms")
        m.inc("vms", 2)
        assert m.get("vms") == 3
        assert m.get("absent") == 0
        assert m.get("absent", 9) == 9

    def test_gauges_take_latest(self):
        m = MetricsRegistry()
        m.set_gauge("depth", 3)
        m.set_gauge("depth", 5)
        assert m.gauges["depth"] == 5

    def test_len(self):
        m = MetricsRegistry()
        m.inc("a")
        m.set_gauge("b", 1)
        assert len(m) == 2


class TestMerge:
    def test_merge_registry_adds_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 2)
        b.inc("x", 3)
        b.inc("y")
        b.set_gauge("g", 7)
        a.merge(b)
        assert a.get("x") == 5 and a.get("y") == 1
        assert a.gauges["g"] == 7

    def test_merge_as_dict_form(self):
        a = MetricsRegistry()
        a.inc("x")
        b = MetricsRegistry()
        b.inc("x", 4)
        b.set_gauge("g", 1)
        a.merge(b.as_dict())  # plain dicts travel through pickling
        assert a.get("x") == 5 and a.gauges["g"] == 1

    def test_merge_is_order_insensitive_for_counters(self):
        parts = []
        for n in (1, 2, 3):
            m = MetricsRegistry()
            m.inc("c", n)
            parts.append(m)
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for p in parts:
            fwd.merge(p)
        for p in reversed(parts):
            rev.merge(p)
        assert fwd.summary_text() == rev.summary_text()


class TestSerialization:
    def test_as_dict_sorts_keys(self):
        m = MetricsRegistry()
        m.inc("zeta")
        m.inc("alpha")
        assert list(m.as_dict()["counters"]) == ["alpha", "zeta"]

    def test_summary_text_is_canonical(self):
        a = MetricsRegistry()
        a.inc("b")
        a.inc("a", 2.0)
        b = MetricsRegistry()
        b.inc("a", 2)  # int vs float 2.0: same rendering
        b.inc("b")
        assert a.summary_text() == b.summary_text()
        assert "counter a = 2" in a.summary_text()

    def test_summary_text_keeps_fractions(self):
        m = MetricsRegistry()
        m.inc("ratio", 0.5)
        assert "counter ratio = 0.5" in m.summary_text()

    def test_write_json_roundtrip(self, tmp_path):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.set_gauge("g", 1.5)
        data = json.loads(m.write_json(tmp_path / "m.json").read_text())
        assert data == {"counters": {"a": 2}, "gauges": {"g": 1.5}}


class TestActivation:
    def test_current_is_none_by_default(self):
        assert current() is None

    def test_activate_scopes_the_registry(self):
        m = MetricsRegistry()
        with m.activate():
            assert current() is m
        assert current() is None

    def test_activation_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with outer.activate():
            with inner.activate():
                assert current() is inner
            assert current() is outer

    def test_fresh_thread_sees_no_registry(self):
        seen = []
        m = MetricsRegistry()
        with m.activate():
            t = threading.Thread(target=lambda: seen.append(current()))
            t.start()
            t.join()
        assert seen == [None]
