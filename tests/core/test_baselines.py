"""Tests for the fixed-pool Round-Robin / Least-Load baselines."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.base import scheduling_algorithm
from repro.core.allocation.baselines import LeastLoadScheduler, RoundRobinScheduler
from repro.core.allocation.level import AllParScheduler
from repro.errors import SchedulingError
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import mapreduce, montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestRegistry:
    def test_registered(self):
        assert scheduling_algorithm("roundrobin").name == "RoundRobin"
        assert scheduling_algorithm("leastload", pool_size=2).pool_size == 2


class TestRoundRobin:
    def test_pool_size_respected(self, platform):
        sched = RoundRobinScheduler(pool_size=3).schedule(montage(), platform)
        assert sched.vm_count == 3

    def test_pool_capped_at_task_count(self, platform):
        sched = RoundRobinScheduler(pool_size=50).schedule(sequential(3), platform)
        assert sched.vm_count == 3

    def test_cyclic_distribution(self, platform):
        wf = mapreduce(mappers=4, reducers=2)  # 12 tasks
        sched = RoundRobinScheduler(pool_size=2).schedule(wf, platform)
        sizes = sorted(len(vm.placements) for vm in sched.vms)
        assert sizes == [6, 6]

    def test_valid_and_replayable(self, platform, paper_workflow):
        sched = RoundRobinScheduler(pool_size=4).schedule(paper_workflow, platform)
        sched.validate()
        simulate_schedule(sched, check=True)

    def test_invalid_pool(self):
        with pytest.raises(SchedulingError):
            RoundRobinScheduler(pool_size=0)


class TestLeastLoad:
    def test_balances_busy_time(self, platform):
        wf = apply_model(mapreduce(), ParetoModel(), seed=3)
        sched = LeastLoadScheduler(pool_size=4).schedule(wf, platform)
        busy = [vm.busy_seconds for vm in sched.vms]
        # the heaviest VM carries at most ~one extra max-task of work
        longest = max(t.work for t in wf.tasks)
        assert max(busy) - min(busy) <= longest + 1e-6

    def test_valid_and_replayable(self, platform, paper_workflow):
        sched = LeastLoadScheduler(pool_size=4).schedule(paper_workflow, platform)
        sched.validate()
        simulate_schedule(sched, check=True)


class TestElasticityGap:
    def test_elastic_policy_beats_fixed_pool_makespan(self, platform):
        """The paper's motivation: elastic provisioning exploits cloud
        elasticity a fixed pool cannot."""
        wf = apply_model(mapreduce(mappers=16, reducers=4), ParetoModel(), seed=0)
        fixed = RoundRobinScheduler(pool_size=4).schedule(wf, platform)
        elastic = AllParScheduler(exceed=True).schedule(wf, platform)
        assert elastic.makespan < fixed.makespan
