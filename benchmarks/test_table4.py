"""Table IV — AllPar[Not]Exceed savings fluctuation vs stable gain per
instance size.

The paper's key observations: the gain per size is stable and tracks the
speed-up (0% for small, ~37% for medium, ~52% for large), while the loss
interval fluctuates wildly; small is the only size whose loss never goes
positive.
"""

from benchmarks.conftest import save_artifact
from repro.experiments.tables import render_table4, table4


def test_table4(benchmark, paper_sweep, artifact_dir):
    entries = benchmark(table4, paper_sweep)
    by_size = {e["size"]: e for e in entries}
    assert set(by_size) == {"s", "m", "l"}

    # small: savings are never negative (loss interval tops out at 0)
    assert by_size["s"]["loss_interval"][1] <= 1e-6

    # stable gain tracks the speed-up: 1 - 1/1.6 = 37.5%, 1 - 1/2.1 = 52.4%
    # (the best case hits it exactly; the interval must bracket it)
    m_lo, m_hi = by_size["m"]["gain_interval"]
    l_lo, l_hi = by_size["l"]["gain_interval"]
    assert m_lo - 1e-6 <= 37.5 <= m_hi + 1e-6
    assert l_lo - 1e-6 <= 52.4 <= l_hi + 1e-6

    # losses fluctuate much more than gains for m/l (the paper's point)
    for size in ("m", "l"):
        loss_span = by_size[size]["loss_interval"][1] - by_size[size]["loss_interval"][0]
        assert loss_span > 50.0

    # larger instances risk larger losses
    assert (
        by_size["l"]["loss_interval"][1]
        >= by_size["m"]["loss_interval"][1]
        >= by_size["s"]["loss_interval"][1]
    )

    save_artifact(artifact_dir, "table4.txt", render_table4(paper_sweep))
