"""The paper's reference strategy: HEFT + OneVMperTask on small
instances, "marked as a filled square in the upper-left corner of the
target square" of Figure 4."""

from __future__ import annotations

from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.heft import HeftScheduler
from repro.core.schedule import Schedule
from repro.workflows.dag import Workflow


def reference_schedule(
    workflow: Workflow,
    platform: CloudPlatform,
    region: Region | None = None,
) -> Schedule:
    """HEFT + OneVMperTask-small schedule of *workflow* on *platform*."""
    return HeftScheduler("OneVMperTask").schedule(
        workflow, platform, itype=platform.itype("small"), region=region
    )
