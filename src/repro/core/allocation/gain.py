"""Gain (paper Sect. III-B, after Sakellariou et al.).

Starting from OneVMperTask-small, build a gain matrix with tasks as rows
and instance types as columns,

    gain[i][j] = (exec_current_i - exec_new_ij) / (cost_new_ij - cost_current_i)

pick the (task, type) cell with the greatest gain, upgrade that task's
VM, and repeat while the total rent stays within ``budget_factor`` times
the reference cost.  The default budget is 2x: the paper's budget
sentence is garbled, but its results section pins both dynamic SAs'
cost loss inside [45, 100]%, which only a 2x cap reproduces (see
DESIGN.md).  An upgrade
that strictly saves money (``cost_new <= cost_current``, possible when a
shorter runtime drops a whole BTU) is treated as infinite gain and taken
first.
"""

from __future__ import annotations

import math
from typing import Dict, Set, Tuple

from repro.cloud.instance import SMALL, InstanceType, faster_types
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.allocation.upgrade import one_vm_schedule, total_rent_cost
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


@register_algorithm
class GainScheduler(SchedulingAlgorithm):
    name = "GAIN"
    heterogeneous = True

    def __init__(self, budget_factor: float = 2.0) -> None:
        if budget_factor < 1.0:
            raise SchedulingError(f"budget_factor must be >= 1, got {budget_factor}")
        self.budget_factor = budget_factor

    def _best_cell(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        region: Region,
        task_types: Dict[str, InstanceType],
        blocked: Set[Tuple[str, str]],
    ) -> Tuple[str, InstanceType] | None:
        """The (task, new type) upgrade with the largest gain, or None."""
        billing = platform.billing
        best: Tuple[float, str, InstanceType] | None = None
        for tid, cur in task_types.items():
            task = workflow.task(tid)
            exec_cur = platform.runtime(task, cur)
            cost_cur = billing.vm_cost(exec_cur, cur, region)
            for new in faster_types(cur):
                if (tid, new.name) in blocked:
                    continue
                exec_new = platform.runtime(task, new)
                cost_new = billing.vm_cost(exec_new, new, region)
                dexec = exec_cur - exec_new
                dcost = cost_new - cost_cur
                gain = math.inf if dcost <= 1e-12 else dexec / dcost
                if gain <= 0:
                    continue
                # Deterministic tie-break: higher gain, then task id, then
                # slower new type (cheapest sufficient upgrade).
                key = (gain, tid, new)
                if best is None or gain > best[0] or (
                    gain == best[0] and (tid, new.speedup) < (best[1], best[2].speedup)
                ):
                    best = (gain, tid, new)
        if best is None:
            return None
        return best[1], best[2]

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        reg = region or platform.default_region
        task_types: Dict[str, InstanceType] = {
            tid: itype for tid in workflow.task_ids
        }
        budget = self.budget_factor * total_rent_cost(
            workflow, platform, task_types, reg
        )
        blocked: Set[Tuple[str, str]] = set()

        while True:
            cell = self._best_cell(workflow, platform, reg, task_types, blocked)
            if cell is None:
                break
            tid, new_type = cell
            trial = dict(task_types)
            trial[tid] = new_type
            if total_rent_cost(workflow, platform, trial, reg) <= budget + 1e-9:
                task_types = trial
                # Upgrading re-opens the task's previously-blocked faster
                # cells? No: costs only grow, so keep them blocked.
            else:
                blocked.add((tid, new_type.name))

        return one_vm_schedule(
            workflow, platform, task_types, reg, algorithm=self.name
        ).validate()
