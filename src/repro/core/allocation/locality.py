"""Data-locality-aware multi-region scheduling.

The paper observes that "the strategies that tend to allocate more VMs
are better suited for tasks with large data dependencies where the VM
should be as close as possible to the data" (Sect. III-A) but never
evaluates it — all its experiments run in one region.  This module does:
entry tasks can be *pinned* to the region holding their dataset
(``Task.attrs['region']``), and the data-gravity chooser rents each
task's new VM in the region its largest input lives in, so the wide,
cheap branches stay next to their data and only the narrow join edges
pay cross-region egress.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import register_algorithm
from repro.core.allocation.heft import HeftScheduler
from repro.core.builder import ScheduleBuilder
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


def pin_regions(wf: Workflow, pins: Mapping[str, str]) -> Workflow:
    """Copy of *wf* with ``attrs['region']`` set on the pinned tasks —
    declaring where each task's dataset lives."""
    out = Workflow(wf.name)
    for task in wf.tasks:
        attrs = dict(task.attrs)
        if task.id in pins:
            attrs["region"] = pins[task.id]
        out.add_task(Task(task.id, task.work, task.category, attrs))
    for u, v, gb in wf.edges():
        out.add_dependency(u, v, gb)
    return out.validate()


def pinned_region(platform: CloudPlatform, task: Task) -> Optional[Region]:
    name = task.attrs.get("region")
    return platform.region(str(name)) if name else None


def pins_only_chooser(platform: CloudPlatform):
    """Honor region pins; everything unpinned stays in the builder's
    default region — the baseline that respects data placement but does
    not chase it."""

    def chooser(task_id: str, builder: ScheduleBuilder) -> Optional[Region]:
        return pinned_region(platform, builder.workflow.task(task_id))

    return chooser


def data_gravity_chooser(platform: CloudPlatform):
    """Honor pins, then follow the data: a new VM is rented in the
    region of the already-placed predecessor shipping the most data."""

    def chooser(task_id: str, builder: ScheduleBuilder) -> Optional[Region]:
        pin = pinned_region(platform, builder.workflow.task(task_id))
        if pin is not None:
            return pin
        best_region, best_volume = None, -1.0
        for pred in builder.workflow.predecessors(task_id):
            vm = builder.task_vm.get(pred)
            if vm is None:
                continue
            gb = builder.workflow.data_gb(pred, task_id)
            if gb > best_volume:
                best_volume, best_region = gb, vm.region
        return best_region

    return chooser


@register_algorithm
class LocalityHeftScheduler(HeftScheduler):
    """HEFT + provisioning with data-gravity region selection.

    ``follow_data=False`` gives the pins-only baseline (datasets are
    respected, compute stays home) for apples-to-apples comparisons.
    """

    name = "HEFT-Locality"
    heterogeneous = False

    def __init__(
        self,
        provisioning="OneVMperTask",
        follow_data: bool = True,
        include_transfers: bool = True,
    ) -> None:
        super().__init__(provisioning, include_transfers)
        self.follow_data = follow_data

    def _make_builder(self, workflow, platform, itype, region) -> ScheduleBuilder:
        chooser = (
            data_gravity_chooser(platform)
            if self.follow_data
            else pins_only_chooser(platform)
        )
        return ScheduleBuilder(
            workflow, platform, itype, region, region_chooser=chooser
        )
