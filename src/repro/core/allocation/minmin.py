"""Min-Min and Max-Min list heuristics over a fixed pool.

Classics of the grid era and the basis of the instance-intensive
heuristics the paper's related work cites (Liu et al.'s Min-Min-Average
etc.).  At each step, among the *ready* tasks compute every task's best
completion time over the pool; Min-Min schedules the task whose best
completion time is smallest (clearing short work first), Max-Min the
one whose best completion time is largest (starting long work early).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.builder import BuilderVM, ScheduleBuilder
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.workflows.dag import Workflow


class _MinMaxBase(SchedulingAlgorithm):
    #: True = Max-Min (pick the largest best-completion-time task)
    take_max: bool = False

    def __init__(self, pool_size: int = 4) -> None:
        if pool_size < 1:
            raise SchedulingError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size

    def _best_on_pool(
        self, builder: ScheduleBuilder, pool: List[BuilderVM], tid: str
    ):
        """(completion time, vm) minimizing *tid*'s finish over the pool."""
        best = None
        for vm in pool:
            finish = builder.earliest_start(tid, vm) + builder.exec_time(
                tid, vm.itype
            )
            if best is None or finish < best[0] - 1e-12:
                best = (finish, vm)
        assert best is not None
        return best

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        builder = ScheduleBuilder(workflow, platform, itype, region)
        pool = [
            builder.new_vm() for _ in range(min(self.pool_size, len(workflow)))
        ]
        pending: Dict[str, int] = {
            tid: len(workflow.predecessors(tid)) for tid in workflow.task_ids
        }
        ready: Set[str] = {t for t, n in pending.items() if n == 0}
        while ready:
            candidates = {
                tid: self._best_on_pool(builder, pool, tid) for tid in ready
            }
            chooser = max if self.take_max else min
            tid = chooser(
                candidates, key=lambda t: (candidates[t][0], t)
            )
            _, vm = candidates[tid]
            builder.begin_task(tid)
            builder.place(tid, vm)
            ready.remove(tid)
            for succ in workflow.successors(tid):
                pending[succ] -= 1
                if pending[succ] == 0:
                    ready.add(succ)
        return builder.build(algorithm=self.name, provisioning="FixedPool").validate()


@register_algorithm
class MinMinScheduler(_MinMaxBase):
    """Shortest best-completion-time first."""

    name = "MinMin"
    take_max = False


@register_algorithm
class MaxMinScheduler(_MinMaxBase):
    """Longest best-completion-time first."""

    name = "MaxMin"
    take_max = True
