"""Comparison bench: path clustering (PCH, the related work's HCOC
substrate) against the paper's policies, CPU- vs data-intensive.

Clustering's promise is killing heavy-edge transfers by keeping paths on
one machine: on a data-heavy Montage it should close most of the gap to
OneVMperTask's makespan at a fraction of the cost, while on the
CPU-bound instance it behaves like a cheap mid-field strategy.
"""

from benchmarks.conftest import SWEEP_SEED, save_artifact
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.pch import PchScheduler
from repro.core.critical import realized_critical_path
from repro.util.tables import format_table
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoDataModel, ParetoModel
from repro.workflows.generators import montage


def _study(platform):
    cpu_wf = apply_model(montage(), ParetoModel(), seed=SWEEP_SEED)
    data_wf = apply_model(
        montage(), ParetoDataModel(size_scale_mb=5 * 1024.0), seed=SWEEP_SEED
    )
    out = {}
    for regime, wf in (("cpu", cpu_wf), ("data", data_wf)):
        rows = {}
        for label, algo in (
            ("OneVMperTask", HeftScheduler("OneVMperTask")),
            ("StartParExceed", HeftScheduler("StartParExceed")),
            ("PCH", PchScheduler()),
        ):
            sched = algo.schedule(wf, platform)
            report = realized_critical_path(sched)
            rows[label] = {
                "makespan": sched.makespan,
                "cost": sched.total_cost,
                "vm_blocking": report.bottleneck_fraction_vm,
            }
        out[regime] = rows
    return out


def test_clustering_comparison(benchmark, platform, artifact_dir):
    out = benchmark(_study, platform)

    for regime, rows in out.items():
        # clustering is strictly cheaper than one VM per task...
        assert rows["PCH"]["cost"] < rows["OneVMperTask"]["cost"], regime
        # ...and strictly faster than full serialization
        assert rows["PCH"]["makespan"] < rows["StartParExceed"]["makespan"], regime

    # the data regime is where clustering earns its keep: its makespan
    # gap to the all-parallel extreme shrinks vs the CPU regime
    def gap(regime):
        return (
            out[regime]["PCH"]["makespan"]
            / out[regime]["OneVMperTask"]["makespan"]
        )

    assert gap("data") < gap("cpu") * 1.05

    # serialization shows up in the blocking analysis: StartParExceed's
    # makespan chain is machine-bound, OneVMperTask's dependency-bound
    for regime in out:
        assert out[regime]["StartParExceed"]["vm_blocking"] > 0.5
        assert out[regime]["OneVMperTask"]["vm_blocking"] == 0.0

    table_rows = [
        (
            f"{regime}/{label}",
            r["makespan"],
            r["cost"],
            r["vm_blocking"] * 100,
        )
        for regime, rows in out.items()
        for label, r in rows.items()
    ]
    save_artifact(
        artifact_dir,
        "baseline_clustering.txt",
        format_table(
            ["case", "makespan s", "cost $", "VM-blocked CP %"],
            table_rows,
            title="Path clustering vs the paper's extremes (Montage)",
        ),
    )
