"""Hypothesis property tests on the DAG model, driven by random layered
workflows (a superset of the paper's shapes)."""

from hypothesis import given, settings, strategies as st

from repro.workflows.generators import random_layered


workflows = st.builds(
    random_layered,
    layers=st.integers(1, 6),
    width_range=st.tuples(st.integers(1, 3), st.integers(3, 5)).map(
        lambda t: (t[0], max(t))
    ),
    edge_density=st.floats(0.0, 1.0),
    seed=st.integers(0, 10_000),
)


@settings(max_examples=40, deadline=None)
@given(workflows)
def test_levels_partition_tasks(wf):
    levels = wf.levels()
    flat = [t for lvl in levels for t in lvl]
    assert sorted(flat) == sorted(wf.task_ids)


@settings(max_examples=40, deadline=None)
@given(workflows)
def test_levels_are_antichains(wf):
    """No dependency can connect two tasks of the same level."""
    level = wf.level_of()
    for u, v, _ in wf.edges():
        assert level[u] < level[v]


@settings(max_examples=40, deadline=None)
@given(workflows)
def test_topological_order_respects_edges(wf):
    order = {t: i for i, t in enumerate(wf.topological_order())}
    for u, v, _ in wf.edges():
        assert order[u] < order[v]


@settings(max_examples=40, deadline=None)
@given(workflows)
def test_critical_path_bounds(wf):
    path, length = wf.critical_path()
    # the path is a real chain
    for u, v in zip(path, path[1:]):
        assert v in wf.successors(u)
    # its length is the path's work and bounded by the total work
    assert length <= wf.total_work() + 1e-9
    assert abs(length - sum(wf.task(t).work for t in path)) < 1e-6


@settings(max_examples=40, deadline=None)
@given(workflows)
def test_critical_path_at_least_any_chain(wf):
    """CP length dominates the heaviest entry-to-exit greedy chain."""
    _, length = wf.critical_path()
    # greedy heaviest successor walk from the heaviest entry
    cur = max(wf.entry_tasks(), key=lambda t: wf.task(t).work)
    total = wf.task(cur).work
    while wf.successors(cur):
        cur = max(wf.successors(cur), key=lambda t: wf.task(t).work)
        total += wf.task(cur).work
    assert length >= total - 1e-9


@settings(max_examples=40, deadline=None)
@given(workflows)
def test_entry_and_exit_tasks_consistent(wf):
    for t in wf.entry_tasks():
        assert wf.predecessors(t) == []
    for t in wf.exit_tasks():
        assert wf.successors(t) == []
    assert wf.entry_tasks() and wf.exit_tasks()


@settings(max_examples=40, deadline=None)
@given(workflows, st.floats(1.1, 10.0))
def test_with_works_scales_critical_path(wf, factor):
    """Scaling all runtimes scales the CP length linearly."""
    _, base = wf.critical_path()
    scaled = wf.with_works({t.id: t.work * factor for t in wf.tasks})
    _, longer = scaled.critical_path()
    assert abs(longer - base * factor) < 1e-6 * max(1.0, longer)
