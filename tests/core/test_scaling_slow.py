"""Large-workflow scale tests (``pytest -m slow``; excluded from tier 1).

Drives the full pipeline at the 10k-task scale the indexed kernels were
built for: every provisioning family must complete quickly and — for
the shapes small enough to run the quadratic oracle — stay
trace-identical to its ``*Reference`` kernel.
"""

from __future__ import annotations

import time

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation import HeftScheduler, LevelScheduler
from repro.core.provisioning import PROVISIONING_POLICIES, REFERENCE_POLICIES
from repro.workflows.generators import mapreduce, montage

pytestmark = pytest.mark.slow

#: generous even for a loaded single-core CI box; the indexed kernels
#: take well under a second per 10k-task schedule on an idle one
BUDGET_SECONDS = 30.0


def _scheduler_for(policy_name):
    return LevelScheduler if policy_name.startswith("AllPar") else HeftScheduler


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


@pytest.mark.parametrize("policy_name", sorted(PROVISIONING_POLICIES))
@pytest.mark.parametrize(
    "make_wf", [lambda: montage(3332), lambda: mapreduce(4999, 2)],
    ids=["montage-10k", "mapreduce-10k"],
)
def test_10k_pipeline_completes_in_budget(policy_name, make_wf, platform):
    wf = make_wf()
    scheduler = _scheduler_for(policy_name)(PROVISIONING_POLICIES[policy_name]())
    t0 = time.perf_counter()
    s = scheduler.schedule(wf, platform)
    elapsed = time.perf_counter() - t0
    assert elapsed < BUDGET_SECONDS, f"{policy_name}: {elapsed:.1f}s"
    assert set(s.workflow.task_ids) == {
        p.task_id for vm in s.vms for p in vm.placements
    }


@pytest.mark.parametrize("policy_name", sorted(PROVISIONING_POLICIES))
def test_2k_trace_identical_to_reference(policy_name, platform):
    """Larger than the tier-1 property tests, still tractable for the
    quadratic oracle."""
    wf = montage(666)  # 2004 tasks
    cls = _scheduler_for(policy_name)
    opt = cls(PROVISIONING_POLICIES[policy_name]()).schedule(wf, platform)
    ref = cls(REFERENCE_POLICIES[policy_name]()).schedule(wf, platform)

    def fp(s):
        return (
            tuple(
                (vm.id, vm.itype.name, vm.region.name, vm.boot_seconds,
                 tuple((p.task_id, p.start, p.end) for p in vm.placements))
                for vm in s.vms
            ),
            s.makespan,
            s.total_cost,
        )

    assert fp(opt) == fp(ref)


def test_50k_montage_schedules(platform):
    wf = montage(16665)  # 50001 tasks
    t0 = time.perf_counter()
    s = HeftScheduler("StartParExceed").schedule(wf, platform)
    assert time.perf_counter() - t0 < 4 * BUDGET_SECONDS
    assert len(s.workflow.task_ids) == 50001
