"""ASCII renditions of the paper's figures.

Figure 4 is a gain-vs-loss scatter and Figure 5 an idle-time bar chart;
both are reproduced as terminal graphics so the benchmark harness can
print the same *series* the paper plots without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple


def _nice_bounds(values: Sequence[float], pad: float = 0.05) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        lo -= 1.0
        hi += 1.0
    span = hi - lo
    return lo - pad * span, hi + pad * span


def ascii_scatter(
    points: Mapping[str, Tuple[float, float]],
    *,
    width: int = 72,
    height: int = 24,
    xlabel: str = "x",
    ylabel: str = "y",
    mark_origin: bool = True,
) -> str:
    """Render labelled ``(x, y)`` points on a character grid.

    Each series is marked with a single letter; a legend maps letters back
    to series names. When *mark_origin* is set, the x=0 / y=0 axes are
    drawn so the paper's "target square" (gain >= 0, loss <= 0) is visible.
    """
    if not points:
        return "(no points)"
    names = list(points)
    xs = [points[n][0] for n in names]
    ys = [points[n][1] for n in names]
    xlo, xhi = _nice_bounds(xs + ([0.0] if mark_origin else []))
    ylo, yhi = _nice_bounds(ys + ([0.0] if mark_origin else []))

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int((x - xlo) / (xhi - xlo) * (width - 1))))

    def to_row(y: float) -> int:
        # row 0 is the top of the plot
        return min(height - 1, max(0, int((yhi - y) / (yhi - ylo) * (height - 1))))

    if mark_origin:
        c0, r0 = to_col(0.0), to_row(0.0)
        for r in range(height):
            grid[r][c0] = "|"
        for c in range(width):
            grid[r0][c] = "-"
        grid[r0][c0] = "+"

    marks = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    legend = []
    for i, name in enumerate(names):
        mark = marks[i % len(marks)]
        x, y = points[name]
        if math.isnan(x) or math.isnan(y):
            continue
        grid[to_row(y)][to_col(x)] = mark
        legend.append(f"  {mark} = {name} ({x:+.1f}, {y:+.1f})")

    lines = ["".join(row) for row in grid]
    header = f"{ylabel} (vertical, {ylo:.0f}..{yhi:.0f})  vs  {xlabel} (horizontal, {xlo:.0f}..{xhi:.0f})"
    return "\n".join([header, *lines, "legend:", *legend])


def ascii_bars(
    values: Mapping[str, float],
    *,
    width: int = 60,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart, one labelled bar per entry."""
    if not values:
        return "(no bars)"
    vmax = max(values.values())
    scale = (width / vmax) if vmax > 0 else 0.0
    label_w = max(len(k) for k in values)
    lines = []
    for name, v in values.items():
        bar = "#" * max(0, int(round(v * scale)))
        lines.append(f"{name.ljust(label_w)} |{bar} {v:,.0f}{unit}")
    return "\n".join(lines)
