"""Tests for the Min-Min / Max-Min fixed-pool heuristics."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.base import scheduling_algorithm
from repro.core.allocation.minmin import MaxMinScheduler, MinMinScheduler
from repro.errors import SchedulingError
from repro.simulator.executor import simulate_schedule
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import bag_of_tasks, mapreduce


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestRegistry:
    def test_registered(self):
        assert scheduling_algorithm("minmin").name == "MinMin"
        assert scheduling_algorithm("maxmin", pool_size=2).pool_size == 2

    def test_invalid_pool(self):
        with pytest.raises(SchedulingError):
            MinMinScheduler(pool_size=0)


class TestSemantics:
    def test_minmin_clears_short_tasks_first(self, platform):
        """On a BoT with one machine, Min-Min runs in SPT order."""
        wf = bag_of_tasks(4).with_works(
            {"job_000": 400.0, "job_001": 100.0, "job_002": 300.0, "job_003": 200.0}
        )
        sched = MinMinScheduler(pool_size=1).schedule(wf, platform)
        order = sched.vms[0].task_ids
        assert order == ["job_001", "job_003", "job_002", "job_000"]

    def test_maxmin_starts_long_tasks_first(self, platform):
        wf = bag_of_tasks(4).with_works(
            {"job_000": 400.0, "job_001": 100.0, "job_002": 300.0, "job_003": 200.0}
        )
        sched = MaxMinScheduler(pool_size=1).schedule(wf, platform)
        assert sched.vms[0].task_ids == [
            "job_000",
            "job_002",
            "job_003",
            "job_001",
        ]

    def test_maxmin_balances_heterogeneous_bags(self, platform):
        """One long + many short tasks on 2 machines: Max-Min is the
        textbook winner (long task cannot strand at the end)."""
        works = {"job_000": 1000.0}
        works.update({f"job_{i:03d}": 250.0 for i in range(1, 9)})
        wf = bag_of_tasks(9).with_works(works)
        mm = MinMinScheduler(pool_size=2).schedule(wf, platform)
        xm = MaxMinScheduler(pool_size=2).schedule(wf, platform)
        assert xm.makespan <= mm.makespan

    def test_respects_dependencies(self, platform, paper_workflow):
        for cls in (MinMinScheduler, MaxMinScheduler):
            sched = cls(pool_size=3).schedule(paper_workflow, platform)
            sched.validate()
            simulate_schedule(sched, check=True)

    def test_pool_capped(self, platform):
        sched = MinMinScheduler(pool_size=99).schedule(bag_of_tasks(5), platform)
        assert sched.vm_count == 5

    def test_valid_on_pareto_workflows(self, platform):
        wf = apply_model(mapreduce(), ParetoModel(), seed=4)
        for cls in (MinMinScheduler, MaxMinScheduler):
            sched = cls(pool_size=4).schedule(wf, platform)
            sched.validate()
            simulate_schedule(sched, check=True)
