"""Textbook HEFT (Topcuoglu et al.) over a fixed heterogeneous pool.

The paper re-reads HEFT as *ordering only* and delegates placement to a
provisioning policy; the original algorithm instead fixes a set of
heterogeneous processors and places each task on the one minimizing its
earliest finish time, with *insertion* into idle gaps.  This module
implements that original formulation as a comparator: upward ranks use
the mean execution time across the pool, and placement scans every pool
VM for the earliest gap that fits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cloud.instance import SMALL, InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.cloud.vm import VM
from repro.core.allocation.base import SchedulingAlgorithm, register_algorithm
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.util.intervals import Interval, IntervalSet
from repro.workflows.dag import Workflow


@register_algorithm
class ClassicHeftScheduler(SchedulingAlgorithm):
    """Insertion-based HEFT with EFT-minimizing placement."""

    name = "HEFT-Classic"
    heterogeneous = True

    def __init__(self, pool: Sequence[str] = ("small", "small", "medium", "large")) -> None:
        if not pool:
            raise SchedulingError("HEFT needs a non-empty processor pool")
        self.pool = tuple(pool)

    # ------------------------------------------------------------------
    def _mean_ranks(
        self, workflow: Workflow, platform: CloudPlatform, itypes: List[InstanceType]
    ) -> Dict[str, float]:
        """Upward ranks with pool-mean execution and transfer weights."""
        mean_speedup_inv = sum(1.0 / t.speedup for t in itypes) / len(itypes)
        ranks: Dict[str, float] = {}
        for tid in reversed(workflow.topological_order()):
            w = workflow.task(tid).work * mean_speedup_inv
            best = 0.0
            for succ in workflow.successors(tid):
                c = platform.transfer_time(
                    workflow.data_gb(tid, succ), itypes[0], itypes[0]
                )
                best = max(best, c + ranks[succ])
            ranks[tid] = w + best
        return ranks

    def schedule(
        self,
        workflow: Workflow,
        platform: CloudPlatform,
        *,
        itype: InstanceType = SMALL,
        region: Region | None = None,
    ) -> Schedule:
        workflow.validate()
        reg = region or platform.default_region
        itypes = [platform.itype(name) for name in self.pool]
        ranks = self._mean_ranks(workflow, platform, itypes)
        order = sorted(workflow.task_ids, key=lambda t: (-ranks[t], t))

        busy: List[IntervalSet] = [IntervalSet() for _ in itypes]
        assignment: Dict[str, int] = {}
        timing: Dict[str, Tuple[float, float]] = {}

        for tid in order:
            task = workflow.task(tid)
            best: Tuple[float, int, float] | None = None  # (eft, vm index, start)
            for idx, vm_type in enumerate(itypes):
                ready = 0.0
                for pred in workflow.predecessors(tid):
                    p_idx = assignment[pred]
                    dt = platform.transfer_time(
                        workflow.data_gb(pred, tid),
                        itypes[p_idx],
                        vm_type,
                        same_vm=p_idx == idx,
                    )
                    ready = max(ready, timing[pred][1] + dt)
                duration = platform.runtime(task, vm_type)
                start = busy[idx].first_fit(ready, duration)
                eft = start + duration
                if best is None or eft < best[0] - 1e-12:
                    best = (eft, idx, start)
            assert best is not None
            eft, idx, start = best
            busy[idx].add_disjoint(Interval(start, eft))
            assignment[tid] = idx
            timing[tid] = (start, eft)

        vms: List[VM] = []
        for idx, vm_type in enumerate(itypes):
            hosted = [t for t in order if assignment[t] == idx]
            if not hosted:
                continue
            vm = VM(id=len(vms), itype=vm_type, region=reg)
            for tid in hosted:
                start, end = timing[tid]
                vm.place(tid, start, end - start)
            vms.append(vm)
        return Schedule(
            workflow=workflow,
            platform=platform,
            vms=vms,
            algorithm=self.name,
            provisioning="FixedPool",
        ).validate()
