"""Tests for the all-in-one report builder."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.report import full_report
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario


@pytest.fixture(scope="module")
def mini_sweep():
    platform = CloudPlatform.ec2()
    wfs = paper_workflows()
    return run_sweep(
        platform=platform,
        workflows={"montage": wfs["montage"]},
        scenarios=[scenario("pareto", platform)],
        strategies=[strategy("OneVMperTask-s"), strategy("AllParExceed-s")],
        seed=4,
    )


class TestFullReport:
    def test_contains_every_artifact(self, mini_sweep):
        text = full_report(mini_sweep)
        for marker in (
            "Table I ",
            "Table II ",
            "Figure 1 ",
            "Figure 2 ",
            "Figure 3 ",
            "Figure 4 ",
            "Figure 5 ",
            "Table III ",
            "Table IV ",
            "Table V ",
        ):
            assert marker in text, f"report missing {marker!r}"

    def test_uses_given_sweep(self, mini_sweep):
        text = full_report(mini_sweep)
        # only the reduced sweep's strategies appear in the figure 4 legend
        assert "AllParExceed-s" in text
        assert "Figure 4 (montage, pareto)" in text
