"""WaaS service-loop throughput benchmark: the multi-size stress run.

Times seeded multi-tenant service runs at three sizes (1k/5k/10k
workflows over 50/250/500 tenants), plus the preserved scan-based
reference fleet (``FleetManager(indexed=False)``) at 1k, and records
wall time, per-size speedup, simulated throughput, tail latency and
fleet utilization to ``BENCH_service.json`` at the repo root —
appending one dated row to ``BENCH_history.jsonl``, the same
trajectory log the sweep and scaling benchmarks feed.

The reference path is O(tasks x fleet) — a full-roster scan per
placement — so it is only timed at the smallest size; per-size
speedups divide each indexed throughput by the reference throughput
at 1k and are therefore *lower bounds* (the scan path only gets
slower as the fleet grows).

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py

Regression gate (used by ``make bench-check``)::

    PYTHONPATH=src python benchmarks/bench_service.py --check
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path

from repro.cloud.platform import CloudPlatform
from repro.experiments.service import ServiceCell, build_requests
from repro.service.fleet import FleetManager
from repro.service.loop import run_service

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_service.json"
HISTORY = REPO_ROOT / "BENCH_history.jsonl"
SEED = 2013

#: (workflows, tenants) per size label; 1k is the headline cell the
#: regression gate re-times
SIZES = {"1k": (1000, 50), "5k": (5000, 250), "10k": (10000, 500)}

#: minimum absolute slowdown (on top of the ratio tolerance) before the
#: gate fails — ratio-only gates flip on 1-core scheduler jitter
#: (ROADMAP watch item); a real return of the O(tasks x fleet) scan
#: costs tens of seconds, not fractions of one
ABS_SLACK_SECONDS = 1.0


def _run_cell(args, count: int, tenants: int, repeats: int, indexed: bool = True):
    """Best-of-*repeats* wall time for one seeded service run."""
    cell = ServiceCell(
        platform=CloudPlatform.ec2(),
        policy=args.policy,
        admission=args.admission,
        count=count,
        tenants=tenants,
        mean_interarrival=args.interarrival,
        seed=args.seed,
        max_concurrent=args.max_concurrent,
    )
    requests = build_requests(cell)
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_service(
            requests,
            cell.platform,
            policy=cell.policy,
            admission=cell.admission,
            max_concurrent=cell.max_concurrent,
            fleet=None if indexed else FleetManager(indexed=False),
        )
        best = min(best, time.perf_counter() - t0)
    assert result is not None and result.completed == result.admitted
    return result, best


def bench(args) -> dict:
    sizes = {}
    results = {}
    for label, (count, tenants) in SIZES.items():
        # best-of repeats at the gated 1k cell; single shot at the
        # larger sizes to bound total bench time
        repeats = args.repeats if label == "1k" else 1
        result, best = _run_cell(args, count, tenants, repeats)
        results[label] = result
        sizes[label] = {
            "workflows": count,
            "tenants": tenants,
            "repeats_best_of": repeats,
            "wall_seconds": round(best, 4),
            "workflows_per_wall_second": round(result.completed / best, 1),
            "simulated": {
                "completed": result.completed,
                "makespan_s": round(result.makespan, 1),
                "throughput_wf_per_h": round(result.throughput_per_hour, 3),
                "latency_p50_s": round(result.latency_p50, 1),
                "latency_p99_s": round(result.latency_p99, 1),
                "utilization": round(result.utilization, 4),
                "vms_rented": result.vm_count,
                "rent_cost": round(result.rent_cost, 2),
            },
        }

    # scan-based reference at 1k only: one shot (it is the slow path),
    # with a byte-identity assertion against the indexed run
    ref_result, ref_wall = _run_cell(args, *SIZES["1k"], repeats=1, indexed=False)
    ref_rate = ref_result.completed / ref_wall
    reference = {
        "size": "1k",
        "wall_seconds": round(ref_wall, 4),
        "workflows_per_wall_second": round(ref_rate, 1),
        "identical_to_indexed": ref_result == results["1k"],
    }
    for label, entry in sizes.items():
        entry["speedup_vs_reference_1k"] = round(
            entry["workflows_per_wall_second"] / ref_rate, 1
        )

    return {
        "benchmark": "WaaS service loop (run_service)",
        "seed": args.seed,
        "workload": {
            "mean_interarrival_s": args.interarrival,
            "policy": args.policy,
            "admission": args.admission,
            "max_concurrent": args.max_concurrent,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "reference": reference,
        "speedup_note": (
            "speedups divide indexed throughput by the 1k reference "
            "throughput; the scan path is O(tasks x fleet), so larger "
            "sizes understate the true ratio"
        ),
        "sizes": sizes,
    }


def _append_history(wall: float, sim: dict, workflows: int, tenants: int) -> None:
    with HISTORY.open("a") as fh:
        fh.write(
            json.dumps(
                {
                    "date": datetime.date.today().isoformat(),
                    "benchmark": "service",
                    "wall_seconds": wall,
                    "workflows": workflows,
                    "tenants": tenants,
                    "throughput_wf_per_h": sim["throughput_wf_per_h"],
                    "latency_p99_s": sim["latency_p99_s"],
                    "utilization": sim["utilization"],
                }
            )
            + "\n"
        )


def check(args) -> int:
    """Regression gate: re-time the 1k cell, compare to the committed
    baseline with a ratio tolerance AND an absolute slack."""
    if not args.out.exists():
        print(f"no baseline at {args.out}; run without --check first")
        return 2
    baseline = json.loads(args.out.read_text())
    base_entry = baseline.get("sizes", {}).get("1k")
    if base_entry is None:
        print(f"baseline at {args.out} has no sizes/1k cell; regenerate it")
        return 2
    count, tenants = SIZES["1k"]
    result, best = _run_cell(args, count, tenants, repeats=args.repeats)
    base_wall = base_entry["wall_seconds"]
    ratio = best / base_wall
    slack = best - base_wall
    regressed = ratio > 1 + args.tolerance and slack > ABS_SLACK_SECONDS
    status = "OK" if not regressed else "REGRESSION"
    print(
        f"service 1k: base {base_wall:8.3f}s  now {best:8.3f}s  "
        f"x{ratio:5.2f}  {status}"
    )
    _append_history(
        round(best, 4),
        {
            "throughput_wf_per_h": round(result.throughput_per_hour, 3),
            "latency_p99_s": round(result.latency_p99, 1),
            "utilization": round(result.utilization, 4),
        },
        count,
        tenants,
    )
    if regressed:
        print(
            f"\nperf regression gate FAILED: {ratio:.2f}x baseline "
            f"(+{slack:.3f}s; tolerance {1 + args.tolerance:.2f}x "
            f"and +{ABS_SLACK_SECONDS:.2f}s)"
        )
        return 1
    print("\nperf regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--interarrival", type=float, default=180.0)
    parser.add_argument("--policy", default="StartParNotExceed")
    parser.add_argument("--admission", default="fair")
    parser.add_argument("--max-concurrent", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-time the 1k cell and fail on regression vs --out",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed slowdown ratio before the gate fails (with --check)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check(args)

    record = bench(args)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    head = record["sizes"]["1k"]
    _append_history(
        head["wall_seconds"], head["simulated"], head["workflows"], head["tenants"]
    )
    for label, entry in record["sizes"].items():
        sim = entry["simulated"]
        print(
            f"{label:>3s}: {sim['completed']} workflows in "
            f"{entry['wall_seconds']:.2f}s wall "
            f"({entry['workflows_per_wall_second']:.0f} wf/s, "
            f"{entry['speedup_vs_reference_1k']:.0f}x ref) | simulated "
            f"p99 {sim['latency_p99_s']:.0f}s, util {sim['utilization']:.3f}, "
            f"{sim['vms_rented']} VMs"
        )
    ref = record["reference"]
    print(
        f"ref: 1k scan-based in {ref['wall_seconds']:.2f}s wall "
        f"(identical={ref['identical_to_indexed']})"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
