"""Tests for the strategy-stability summaries."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import paper_scenarios
from repro.experiments.summary import most_stable, render_summary, summarize


@pytest.fixture(scope="module")
def sweep():
    platform = CloudPlatform.ec2()
    wfs = paper_workflows()
    return run_sweep(
        platform=platform,
        workflows={"montage": wfs["montage"], "sequential": wfs["sequential"]},
        scenarios=paper_scenarios(platform),
        strategies=[
            strategy("OneVMperTask-s"),
            strategy("OneVMperTask-m"),
            strategy("AllParExceed-s"),
            strategy("GAIN"),
            strategy("CPA-Eager"),
        ],
        seed=8,
    )


class TestSummarize:
    def test_covers_every_strategy(self, sweep):
        s = summarize(sweep)
        assert set(s) == {
            "OneVMperTask-s",
            "OneVMperTask-m",
            "AllParExceed-s",
            "GAIN",
            "CPA-Eager",
        }
        assert all(v.cells == 6 for v in s.values())  # 3 scenarios x 2 wfs

    def test_reference_is_perfectly_stable(self, sweep):
        ref = summarize(sweep)["OneVMperTask-s"]
        assert ref.mean_gain_pct == 0.0
        assert ref.gain_spread_pct == 0.0
        assert ref.stable_gain and ref.stable_loss
        assert ref.in_square_fraction == 1.0

    def test_onevm_medium_has_stable_gain(self, sweep):
        """Uniform 1.6x speed-up => gain is the speed-up identity in
        every cell (Table IV's 'stable gain')."""
        s = summarize(sweep)["OneVMperTask-m"]
        assert s.mean_gain_pct == pytest.approx(37.5, abs=1.0)
        assert s.stable_gain

    def test_dynamic_upgraders_stable_loss(self, sweep):
        """'Gain and CPA-Eager produce stable results throughout' —
        they saturate the same budget everywhere."""
        for label in ("GAIN", "CPA-Eager"):
            assert summarize(sweep)[label].loss_spread_pct <= 60.0


class TestMostStable:
    def test_ranked_and_bounded(self, sweep):
        top = most_stable(sweep, top=3)
        assert len(top) == 3
        spreads = [s.gain_spread_pct + s.loss_spread_pct for s in top]
        assert spreads == sorted(spreads)

    def test_reference_is_most_stable(self, sweep):
        assert most_stable(sweep, top=1)[0].label == "OneVMperTask-s"


class TestRender:
    def test_table_renders(self, sweep):
        out = render_summary(sweep)
        assert "in square %" in out
        assert "GAIN" in out
