"""Hypothesis fuzzing of the discrete-event engine's ordering contract:
events fire in (time, insertion sequence) order regardless of how they
were scheduled, including events scheduled from inside other events."""

from hypothesis import given, settings, strategies as st

from repro.simulator.engine import Simulator

_times = st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(_times)
def test_events_fire_in_time_then_fifo_order(times):
    sim = Simulator()
    fired = []
    for i, t in enumerate(times):
        sim.at(t, lambda t=t, i=i: fired.append((t, i)))
    sim.run()
    assert fired == sorted(fired)  # time, then insertion order


@settings(max_examples=40, deadline=None)
@given(_times, st.floats(0.0, 50.0))
def test_nested_scheduling_preserves_order(times, delay):
    sim = Simulator()
    fired = []

    def make(t):
        def action():
            fired.append(("outer", sim.now))
            sim.after(delay, lambda: fired.append(("inner", sim.now)))

        return action

    for t in times:
        sim.at(t, make(t))
    sim.run()
    stamps = [s for _, s in fired]
    assert stamps == sorted(stamps)
    assert sum(1 for k, _ in fired if k == "inner") == len(times)


@settings(max_examples=40, deadline=None)
@given(_times)
def test_clock_monotone_and_counts(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.at(t, lambda: seen.append(sim.now))
    end = sim.run()
    assert sim.processed_events == len(times)
    assert end == max(times)
    assert all(a <= b for a, b in zip(seen, seen[1:]))
