"""Tests for the pareto/best/worst scenario builders."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.experiments.scenarios import paper_scenarios, scenario, scenario_map
from repro.workflows.generators import montage


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestPaperScenarios:
    def test_three_scenarios(self, platform):
        names = [s.name for s in paper_scenarios(platform)]
        assert names == ["pareto", "best", "worst"]

    def test_lookup(self, platform):
        assert scenario("PARETO", platform).name == "pareto"
        with pytest.raises(ExperimentError):
            scenario("typical", platform)

    def test_map(self, platform):
        assert set(scenario_map(platform)) == {"pareto", "best", "worst"}


class TestApply:
    def test_pareto_uses_seed(self, platform):
        sc = scenario("pareto", platform)
        a = sc.apply(montage(), seed=1)
        b = sc.apply(montage(), seed=1)
        c = sc.apply(montage(), seed=2)
        assert [t.work for t in a.tasks] == [t.work for t in b.tasks]
        assert [t.work for t in a.tasks] != [t.work for t in c.tasks]

    def test_best_ignores_seed(self, platform):
        sc = scenario("best", platform)
        a = sc.apply(montage(), seed=1)
        b = sc.apply(montage(), seed=999)
        assert [t.work for t in a.tasks] == [t.work for t in b.tasks]

    def test_best_property(self, platform):
        wf = scenario("best", platform).apply(montage())
        assert sum(t.work for t in wf.tasks) <= platform.btu_seconds + 1e-9

    def test_worst_property(self, platform):
        wf = scenario("worst", platform).apply(montage())
        max_speedup = max(t.speedup for t in platform.catalog.values())
        for t in wf.tasks:
            assert t.work / max_speedup > platform.btu_seconds
