"""Tests for repro.workflows.task."""

import math

import pytest

from repro.errors import WorkflowError
from repro.workflows.task import Task


class TestTaskValidation:
    def test_valid(self):
        t = Task("t1", 100.0, "map")
        assert t.id == "t1" and t.work == 100.0 and t.category == "map"

    def test_empty_id_rejected(self):
        with pytest.raises(WorkflowError):
            Task("", 1.0)

    def test_non_string_id_rejected(self):
        with pytest.raises(WorkflowError):
            Task(3, 1.0)  # type: ignore[arg-type]

    @pytest.mark.parametrize("work", [0.0, -1.0, math.nan])
    def test_non_positive_work_rejected(self, work):
        with pytest.raises(WorkflowError):
            Task("t", work)

    def test_frozen(self):
        t = Task("t", 1.0)
        with pytest.raises(AttributeError):
            t.work = 2.0  # type: ignore[misc]


class TestTaskBehaviour:
    def test_with_work(self):
        t = Task("t", 1.0, "cat", {"k": 1})
        u = t.with_work(5.0)
        assert u.work == 5.0 and u.id == "t" and u.category == "cat"
        assert u.attrs == {"k": 1}
        assert t.work == 1.0  # original untouched

    def test_runtime_on_speedup(self):
        t = Task("t", 2700.0)
        assert t.runtime_on(2.7) == pytest.approx(1000.0)
        assert t.runtime_on(1.0) == 2700.0

    def test_runtime_on_invalid_speedup(self):
        with pytest.raises(WorkflowError):
            Task("t", 1.0).runtime_on(0.0)
