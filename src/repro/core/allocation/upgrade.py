"""Shared machinery for the dynamic (VM-speed-upgrading) strategies.

CPA-Eager and Gain both start from HEFT + OneVMperTask on small
instances and then raise individual tasks' VM flavors.  Under
OneVMperTask every task owns its VM, so a configuration is fully
described by a ``task id -> InstanceType`` map; this module rebuilds the
concrete schedule and its cost for any such map.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.cloud.instance import InstanceType
from repro.cloud.platform import CloudPlatform
from repro.cloud.region import Region
from repro.core.builder import ScheduleBuilder
from repro.core.schedule import Schedule
from repro.workflows.dag import Workflow


def one_vm_schedule(
    workflow: Workflow,
    platform: CloudPlatform,
    task_types: Mapping[str, InstanceType],
    region: Region | None = None,
    algorithm: str = "OneVM",
) -> Schedule:
    """Schedule with a dedicated VM per task, flavored by *task_types*.

    Timing under OneVMperTask is order-independent (each task starts as
    soon as its inputs arrive), so tasks are placed in topological order.
    """
    default = next(iter(task_types.values())) if task_types else platform.itype("small")
    builder = ScheduleBuilder(workflow, platform, default, region)
    for tid in workflow.topological_order():
        vm = builder.new_vm(task_types[tid])
        builder.place(tid, vm)
    return builder.build(algorithm=algorithm, provisioning="OneVMperTask")


def per_task_vm_cost(
    workflow: Workflow,
    platform: CloudPlatform,
    task_types: Mapping[str, InstanceType],
    region: Region | None = None,
) -> Dict[str, float]:
    """Rent cost of each task's dedicated VM.

    Under OneVMperTask a VM's uptime equals its task's execution time,
    so costs decompose exactly per task — the additivity Gain's matrix
    and the budget checks rely on.
    """
    reg = region or platform.default_region
    billing = platform.billing
    out: Dict[str, float] = {}
    for tid, itype in task_types.items():
        exec_s = platform.runtime(workflow.task(tid), itype)
        out[tid] = billing.vm_cost(exec_s, itype, reg)
    return out


def total_rent_cost(
    workflow: Workflow,
    platform: CloudPlatform,
    task_types: Mapping[str, InstanceType],
    region: Region | None = None,
) -> float:
    """Sum of :func:`per_task_vm_cost` over all tasks."""
    return sum(per_task_vm_cost(workflow, platform, task_types, region).values())
