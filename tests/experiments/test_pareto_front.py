"""Tests for Pareto-front analysis."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.metrics import ScheduleMetrics
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.pareto_front import (
    dominates,
    pareto_front,
    pareto_fronts,
    render_pareto,
)
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario


def _m(label, makespan, cost):
    return ScheduleMetrics(label, makespan, cost, 0.0, 1, 1)


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates(_m("a", 10, 1), _m("b", 20, 2))

    def test_better_one_equal_other(self):
        assert dominates(_m("a", 10, 1), _m("b", 10, 2))
        assert dominates(_m("a", 10, 1), _m("b", 20, 1))

    def test_equal_points_dont_dominate(self):
        assert not dominates(_m("a", 10, 1), _m("b", 10, 1))

    def test_tradeoff_is_incomparable(self):
        assert not dominates(_m("a", 10, 5), _m("b", 20, 1))
        assert not dominates(_m("b", 20, 1), _m("a", 10, 5))


class TestParetoFront:
    def test_frontier_and_dominated(self):
        cell = {
            "fast": _m("fast", 10, 10),
            "cheap": _m("cheap", 100, 1),
            "both-bad": _m("both-bad", 200, 20),
            "middle": _m("middle", 50, 5),
        }
        front = pareto_front(cell)
        assert front.frontier == ("fast", "middle", "cheap")
        assert front.dominated == ("both-bad",)
        assert "fast" in front and "both-bad" not in front

    def test_frontier_sorted_by_makespan(self):
        cell = {
            "a": _m("a", 30, 1),
            "b": _m("b", 10, 3),
            "c": _m("c", 20, 2),
        }
        assert pareto_front(cell).frontier == ("b", "c", "a")

    def test_single_strategy(self):
        front = pareto_front({"only": _m("only", 1, 1)})
        assert front.frontier == ("only",)


class TestOnSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        platform = CloudPlatform.ec2()
        return run_sweep(
            platform=platform,
            workflows={"montage": paper_workflows()["montage"]},
            scenarios=[scenario("pareto", platform)],
            strategies=[
                strategy("OneVMperTask-s"),
                strategy("StartParExceed-s"),
                strategy("OneVMperTask-l"),
                strategy("GAIN"),
                strategy("AllParExceed-s"),
            ],
            seed=12,
        )

    def test_allpar_small_dominates_reference(self, sweep):
        """AllParExceed-s is as fast and much cheaper than the reference
        on Montage/Pareto — the reference is never on the frontier."""
        front = pareto_fronts(sweep)[("pareto", "montage")]
        assert "AllParExceed-s" in front.frontier
        assert "OneVMperTask-s" in front.dominated

    def test_extremes_non_dominated(self, sweep):
        """The cheapest (StartParExceed-s) and strategies buying speed
        with money are trade-offs, not dominated."""
        front = pareto_fronts(sweep)[("pareto", "montage")]
        assert "StartParExceed-s" in front.frontier

    def test_render(self, sweep):
        out = render_pareto(sweep)
        assert "pareto/montage" in out and "frontier" in out
