"""Cold-start (boot time) modeling tests.

The paper ignores boot time via a pre-booting strategy (static
scheduling); the library supports both: ``prebooted=True`` (default,
boot never delays execution) and ``prebooted=False`` (a fresh VM's first
task waits ``boot_seconds`` after becoming ready, per Mao & Humphrey's
observation that EC2 boots are constant ~2 min).
"""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.baseline import reference_schedule
from repro.simulator.executor import simulate_schedule

BOOT = 120.0


@pytest.fixture(scope="module")
def cold_platform():
    return CloudPlatform.ec2(boot_seconds=BOOT, prebooted=False)


@pytest.fixture(scope="module")
def prebooted_platform():
    return CloudPlatform.ec2(boot_seconds=BOOT, prebooted=True)


class TestColdStart:
    def test_entry_task_delayed_by_boot(self, chain3, cold_platform):
        sched = HeftScheduler("OneVMperTask").schedule(chain3, cold_platform)
        assert sched.start("X") == pytest.approx(BOOT)

    def test_every_fresh_vm_pays_boot(self, chain3, cold_platform):
        sched = HeftScheduler("OneVMperTask").schedule(chain3, cold_platform)
        # Y's VM is requested when X's output arrives
        x_done = sched.finish("X")
        assert sched.start("Y") == pytest.approx(x_done + 0.1 + BOOT)

    def test_reused_vm_does_not_reboot(self, chain3, cold_platform):
        sched = HeftScheduler("StartParExceed").schedule(chain3, cold_platform)
        assert sched.vm_count == 1
        # only the first task pays the boot
        assert sched.start("X") == pytest.approx(BOOT)
        assert sched.start("Y") == pytest.approx(sched.finish("X"))

    def test_makespan_increases_vs_prebooted(
        self, diamond, cold_platform, prebooted_platform
    ):
        cold = reference_schedule(diamond, cold_platform)
        warm = reference_schedule(diamond, prebooted_platform)
        assert cold.makespan > warm.makespan
        # a diamond on OneVMperTask pays a boot per critical-path task
        assert cold.makespan == pytest.approx(warm.makespan + 3 * BOOT)

    def test_des_replay_matches_cold_plan(self, diamond, cold_platform):
        for policy in ("OneVMperTask", "StartParNotExceed", "StartParExceed"):
            sched = HeftScheduler(policy).schedule(diamond, cold_platform)
            result = simulate_schedule(sched, check=True)
            kinds = [e.kind for e in result.events]
            assert "vm_boot" in kinds

    def test_boot_counts_toward_rent(self, chain3, cold_platform):
        """The rent window opens at VM request, i.e. boot is billed."""
        sched = HeftScheduler("OneVMperTask").schedule(chain3, cold_platform)
        vm = sched.vm_of("X")
        assert vm.rent_start == pytest.approx(0.0)
        assert vm.uptime_seconds == pytest.approx(BOOT + 1000.0)


class TestPrebooted:
    def test_boot_never_delays_execution(self, chain3, prebooted_platform):
        sched = HeftScheduler("OneVMperTask").schedule(chain3, prebooted_platform)
        assert sched.start("X") == 0.0
        result = simulate_schedule(sched, check=True)
        assert "vm_boot" not in [e.kind for e in result.events]

    def test_paper_default_is_prebooted_zero_boot(self):
        p = CloudPlatform.ec2()
        assert p.prebooted and p.boot_seconds == 0.0
