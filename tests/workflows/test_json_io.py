"""Tests for the JSON interchange."""

import json

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.errors import WorkflowParseError
from repro.simulator.executor import simulate_schedule
from repro.workflows.generators import montage
from repro.workflows.json_io import (
    schedule_to_dict,
    schedule_to_json,
    trace_to_dict,
    workflow_from_json,
    workflow_to_json,
)


class TestWorkflowRoundTrip:
    def test_montage_round_trips(self):
        original = montage()
        back = workflow_from_json(workflow_to_json(original))
        assert back.name == original.name
        assert back.task_ids == original.task_ids
        assert back.edges() == original.edges()
        for t in original.tasks:
            assert back.task(t.id).work == t.work
            assert back.task(t.id).category == t.category

    def test_invalid_json(self):
        with pytest.raises(WorkflowParseError):
            workflow_from_json("{not json")

    def test_non_object(self):
        with pytest.raises(WorkflowParseError):
            workflow_from_json("[1, 2]")

    def test_missing_fields(self):
        with pytest.raises(WorkflowParseError):
            workflow_from_json('{"name": "x", "tasks": [{"id": "a"}]}')

    def test_unknown_edge_target(self):
        bad = (
            '{"name": "x", "tasks": [{"id": "a", "work": 1.0}],'
            ' "edges": [{"from": "a", "to": "ghost"}]}'
        )
        with pytest.raises(WorkflowParseError):
            workflow_from_json(bad)


class TestScheduleExport:
    @pytest.fixture(scope="class")
    def sched(self):
        platform = CloudPlatform.ec2()
        return HeftScheduler("StartParNotExceed").schedule(montage(), platform)

    def test_dict_shape(self, sched):
        d = schedule_to_dict(sched)
        assert d["workflow"] == "montage"
        assert d["makespan"] == pytest.approx(sched.makespan)
        assert len(d["vms"]) == sched.vm_count
        placements = [p for vm in d["vms"] for p in vm["placements"]]
        assert len(placements) == 24

    def test_json_parses(self, sched):
        parsed = json.loads(schedule_to_json(sched))
        assert parsed["total_cost"] == pytest.approx(sched.total_cost)

    def test_trace_export(self, sched):
        result = simulate_schedule(sched)
        d = trace_to_dict(result)
        assert d["makespan"] == pytest.approx(sched.makespan)
        kinds = {e["kind"] for e in d["events"]}
        assert {"task_start", "task_end", "vm_start"} <= kinds
