"""Byte-identity property tests for the indexed fleet kernels.

The indexed :class:`~repro.service.fleet.FleetManager` (live-id set,
stamp-guarded expiry/rank/idle heaps — DESIGN.md §14) must be
observationally indistinguishable from the preserved full-scan
reference (``FleetManager(indexed=False)``, ``reap_reference``,
``_select_vm_reference``): same decision logs, same service rollups,
same metric counters, bit-equal floats.  These tests drive both paths
over the DAG zoo x policies x admissions x seeds and compare entire
results — the same trace-identity contract the static columnar kernels
pin in ``tests/core/test_kernel_equivalence.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.service import ServiceCell, build_requests
from repro.obs.metrics import MetricsRegistry
from repro.service.fleet import FleetManager
from repro.service.loop import run_service
from repro.simulator.faults import FaultPlan
from repro.simulator.online import OnlineCloudExecutor
from repro.workflows.generators import fork_join, mapreduce, random_layered

POLICIES = [
    "OneVMperTask",
    "AllParExceed",
    "AllParNotExceed",
    "StartParExceed",
    "StartParNotExceed",
]
SEEDS = [1, 2013]

SHAPES = {
    "wide": lambda seed: random_layered(
        layers=4, width_range=(6, 14), edge_density=0.4, seed=seed,
        name=f"wide-s{seed}",
    ),
    "diamond": lambda seed: fork_join(
        width=3 + seed % 5, stages=2 + seed % 3, name=f"diamond-s{seed}"
    ),
    "mapreduce": lambda seed: mapreduce(
        mappers=5 + 3 * (seed % 4), reducers=1 + seed % 3, name=f"mr-s{seed}"
    ),
    "deep": lambda seed: random_layered(
        layers=9, width_range=(1, 5), edge_density=0.6, seed=seed,
        name=f"deep-s{seed}",
    ),
}


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


# ----------------------------------------------------------------------
# solo online runs: decision log + metric counter identity
# ----------------------------------------------------------------------
def _online_pair(platform, workflow, policy, fault_plan=None, recovery=None):
    results = []
    registries = []
    for fleet in (None, FleetManager(indexed=False)):
        metrics = MetricsRegistry()
        result = OnlineCloudExecutor(
            workflow,
            platform,
            policy=policy,
            itype=platform.itype("small"),
            fault_plan=fault_plan,
            recovery=recovery,
            metrics=metrics,
            fleet=fleet,
        ).run()
        results.append(result)
        registries.append(metrics)
    return results, registries


@pytest.mark.parametrize(
    "shape,seed",
    [pytest.param(s, z, id=f"{s}-s{z}") for s in SHAPES for z in SEEDS],
)
def test_online_trace_identical(platform, shape, seed):
    """Every policy's full online trace (task timings, VM ids, events,
    costs) and metric counters match between indexed and reference."""
    workflow = SHAPES[shape](seed)
    for policy in POLICIES:
        (indexed, reference), (m_idx, m_ref) = _online_pair(
            platform, workflow, policy
        )
        assert indexed == reference, f"{policy} trace diverged"
        assert m_idx.as_dict() == m_ref.as_dict(), f"{policy} metrics diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_online_trace_identical_under_faults(platform, seed):
    """Crashes, boot failures and retries hit the index maintenance
    paths (mark_crashed, reclaim listeners); the traces must still
    match event for event."""
    plan = FaultPlan(
        seed=seed, task_fail_prob=0.15, vm_crash_rate=1 / 20000, boot_fail_prob=0.1
    )
    workflow = SHAPES["deep"](seed)
    for policy in POLICIES:
        (indexed, reference), (m_idx, m_ref) = _online_pair(
            platform, workflow, policy, fault_plan=plan, recovery="retry"
        )
        assert indexed == reference, f"{policy} faulted trace diverged"
        assert indexed.faults == reference.faults
        assert m_idx.as_dict() == m_ref.as_dict(), f"{policy} metrics diverged"


# ----------------------------------------------------------------------
# service loop: rollup identity over policies x admissions x seeds
# ----------------------------------------------------------------------
def _service_pair(platform, policy, admission, seed, budget=float("inf")):
    cell = ServiceCell(
        platform=platform,
        policy=policy,
        admission=admission,
        count=14,
        tenants=4,
        mean_interarrival=180.0,
        seed=seed,
        budget=budget,
        max_concurrent=4,
    )
    requests = build_requests(cell)
    runs = []
    for fleet in (None, FleetManager(indexed=False)):
        runs.append(
            run_service(
                requests,
                platform,
                policy=policy,
                admission=admission,
                max_concurrent=cell.max_concurrent,
                fleet=fleet,
            )
        )
    return runs


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("admission", ["fifo", "fair"])
@pytest.mark.parametrize("seed", SEEDS)
def test_service_rollup_identical(platform, policy, admission, seed):
    """The entire ServiceResult — per-tenant bills, latency
    percentiles, utilization, per-workflow reports — is equal between
    the indexed and reference fleets."""
    indexed, reference = _service_pair(platform, policy, admission, seed)
    assert indexed == reference
    assert indexed.rollup() == reference.rollup()


@pytest.mark.parametrize("seed", SEEDS)
def test_service_rollup_identical_budget_admission(platform, seed):
    """Budget-guard admission estimates price workflows through a
    static builder against the shared fleet ledger; rejections and
    rollups must not depend on the fleet's indexing mode."""
    indexed, reference = _service_pair(
        platform, "StartParNotExceed", "budget", seed, budget=2.0
    )
    assert indexed.rejected == reference.rejected
    assert indexed == reference


# ----------------------------------------------------------------------
# manager-level property: random op sequences
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 7, 2013])
def test_manager_random_ops_identical(platform, seed):
    """Drive an indexed and a reference manager through one random
    rent/use/crash/reap sequence; liveness, reap order, selection
    queries and counters must stay equal at every step."""
    itype = platform.itype("small")
    billing = platform.billing
    btu = billing.btu_seconds
    rng = random.Random(seed)
    indexed = FleetManager(region=platform.default_region)
    reference = FleetManager(region=platform.default_region, indexed=False)
    now = 0.0
    for _ in range(400):
        now += rng.expovariate(1 / 300.0)
        roll = rng.random()
        if roll < 0.45 or not indexed.live_count:
            boot = 30.0 + 60.0 * rng.random()
            dur = 100.0 + 2000.0 * rng.random()
            owner = f"t{rng.randrange(4)}"
            va = indexed.rent(itype, now, now + boot + dur, owner=owner)
            vb = reference.rent(itype, now, now + boot + dur, owner=owner)
            va.busy_seconds += dur
            vb.busy_seconds += dur
            indexed.note_use(va)
            reference.note_use(vb)
        elif roll < 0.80:
            live = indexed.alive()
            vm = live[rng.randrange(len(live))]
            twin = reference.vms[vm.id]
            dur = 100.0 + 2000.0 * rng.random()
            start = max(now, vm.free_at)
            for v in (vm, twin):
                v.free_at = start + dur
                v.busy_seconds += dur
            indexed.note_use(vm)
            reference.note_use(twin)
        else:
            live = indexed.alive()
            vm = live[rng.randrange(len(live))]
            indexed.mark_crashed(vm, now)
            reference.mark_crashed(reference.vms[vm.id], now)
        got = [vm.id for vm in indexed.reap(now, btu)]
        want = [vm.id for vm in reference.reap(now, btu)]
        assert got == want
        assert [vm.id for vm in indexed.alive()] == [
            vm.id for vm in reference.alive()
        ]
        assert indexed.counters() == reference.counters()
        best = indexed.max_busy_alive()
        live = reference.alive()
        want_best = max(live, key=lambda v: (v.busy_seconds, -v.id), default=None)
        assert (best.id if best else None) == (
            want_best.id if want_best else None
        )
        idle = indexed.best_idle(now)
        want_idle = max(
            (v for v in live if v.free_at <= now + 1e-9),
            key=lambda v: (v.busy_seconds, -v.id),
            default=None,
        )
        assert (idle.id if idle else None) == (
            want_idle.id if want_idle else None
        )
    # the single-pass rollup equals the three-pass accounting, floats
    # bit-equal (same accumulation order)
    roll_idx = indexed.finalize(billing)
    assert roll_idx.bills == reference.bill(billing)
    assert roll_idx.utilization == reference.utilization(billing)


# ----------------------------------------------------------------------
# scale smoke (excluded from tier 1 via the `slow` marker)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_service_10k_smoke(platform):
    """The 10k-workflow / 500-tenant run the indexed kernels target:
    must complete (admitted == completed) without event-budget blowups."""
    cell = ServiceCell(
        platform=platform,
        policy="StartParNotExceed",
        admission="fair",
        count=10_000,
        tenants=500,
        mean_interarrival=180.0,
        seed=2013,
        max_concurrent=32,
    )
    result = run_service(
        build_requests(cell),
        platform,
        policy=cell.policy,
        admission=cell.admission,
        max_concurrent=cell.max_concurrent,
    )
    assert result.submitted == 10_000
    assert result.completed == result.admitted == 10_000
    assert result.vm_count > 0
