"""Metamorphic identity: a neutral market is byte-identical to none.

A market with a constant multiplier of 1.0 and on-demand (or
infinite-bid spot) purchases changes *nothing* observable: the same
events, the same costs, the same makespan — across the static
executor for every paper policy family, the online executor, and the
multi-tenant service loop.  This is the relation that lets the whole
market subsystem ride inside the executors without a parallel "no
market" code path: the zero-market behavior IS the neutral-market
behavior.
"""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.experiments.config import strategy
from repro.market import ConstantPrice, Market, ON_DEMAND, spot
from repro.service.arrivals import WorkflowRequest
from repro.service.loop import WorkflowService
from repro.simulator.executor import ScheduleExecutor
from repro.simulator.online import run_online
from repro.workflows.generators import mapreduce, montage

PLATFORM = CloudPlatform.ec2()
NEUTRAL = Market(ConstantPrice(1.0), purchase=ON_DEMAND)
#: an infinite bid never loses capacity; multiplier 1.0 never discounts
NEUTRAL_SPOT = Market(ConstantPrice(1.0), purchase=spot())

POLICY_FAMILIES = [
    "OneVMperTask-s",
    "StartParNotExceed-s",
    "StartParExceed-s",
    "AllParNotExceed-s",
    "AllParExceed-s",
]


@pytest.mark.parametrize("label", POLICY_FAMILIES)
@pytest.mark.parametrize("market", [NEUTRAL, NEUTRAL_SPOT], ids=["od", "spotinf"])
def test_static_executor_neutral_market_identity(label, market):
    wf = montage(25)
    base_sched = strategy(label).run(wf, PLATFORM)
    base = ScheduleExecutor(base_sched).run()

    plat = PLATFORM.with_market(market)
    sched = strategy(label).run(wf, plat)
    got = ScheduleExecutor(sched).run()

    assert got.events == base.events
    assert got.makespan == base.makespan
    assert got.task_start == base.task_start
    assert got.task_finish == base.task_finish
    # the market run carries realized-rent accounting; neutral prices
    # must reproduce the planned fixed-price rent exactly
    assert got.realized_cost == base_sched.total_cost
    assert got.faults is not None
    assert got.faults.preemptions == 0
    assert got.faults.grace_warnings == 0
    assert got.faults.rebids == 0
    assert got.faults.decisions == []


@pytest.mark.parametrize("market", [NEUTRAL, NEUTRAL_SPOT], ids=["od", "spotinf"])
def test_online_executor_neutral_market_identity(market):
    wf = montage(25)
    base = run_online(wf, PLATFORM, policy="StartParNotExceed")
    got = run_online(
        wf, PLATFORM.with_market(market), policy="StartParNotExceed"
    )
    assert got.events == base.events
    assert got.makespan == base.makespan
    assert got.rent_cost == base.rent_cost
    assert got.idle_seconds == base.idle_seconds
    assert got.task_finish == base.task_finish


def test_service_loop_neutral_market_identity():
    reqs = [
        WorkflowRequest(name="a", tenant="t1", workflow=montage(25), arrival=0.0),
        WorkflowRequest(
            name="b", tenant="t2", workflow=mapreduce(20), arrival=900.0
        ),
    ]

    def run(platform):
        svc = WorkflowService(platform, policy="StartParNotExceed")
        return svc.run(list(reqs))

    base = run(PLATFORM)
    got = run(PLATFORM.with_market(NEUTRAL))
    assert got.rent_cost == base.rent_cost
    assert got.makespan == base.makespan
    assert got.btus == base.btus
    assert got.utilization == base.utilization
    assert [
        (t.tenant, t.bill.rent_cost if t.bill else None)
        for t in got.tenants.values()
    ] == [
        (t.tenant, t.bill.rent_cost if t.bill else None)
        for t in base.tenants.values()
    ]


def test_decision_log_format_unchanged_without_market():
    """Zero-market recovery logs keep their historical format (no tag
    suffix) byte-for-byte."""
    from repro.simulator.faults import FaultPlan

    sched = strategy("StartParNotExceed-s").run(montage(25), PLATFORM)
    res = ScheduleExecutor(
        sched, fault_plan=FaultPlan(seed=1, task_fail_prob=0.3), recovery="retry"
    ).run()
    assert res.faults is not None and res.faults.decisions
    for line in res.faults.decisions:
        assert "[" not in line and "]" not in line


def test_zero_market_metrics_keys_unchanged():
    """A zero-market run must not grow new counter keys."""
    from repro.obs.metrics import MetricsRegistry

    sched = strategy("StartParNotExceed-s").run(montage(25), PLATFORM)
    reg = MetricsRegistry()
    ScheduleExecutor(sched, metrics=reg).run()
    keys = set(reg.as_dict().get("counters", reg.as_dict()))
    assert not any("preempt" in str(k) or "rebid" in str(k) for k in keys)
