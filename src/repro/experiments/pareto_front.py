"""Pareto-front analysis of a sweep cell.

The paper buckets strategies into savings/gain/balanced (Table III);
multi-objective optimization has a sharper notion: a strategy is
*dominated* if another is at least as good on both makespan and cost
and strictly better on one.  The non-dominated set is the menu a user
actually chooses from; everything else is never the right answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.metrics import ScheduleMetrics
from repro.experiments.runner import SweepResult
from repro.util.tables import format_table

_EPS = 1e-9


def dominates(a: ScheduleMetrics, b: ScheduleMetrics) -> bool:
    """Is *a* at least as fast and as cheap as *b*, and strictly better
    on one axis?"""
    no_worse = a.makespan <= b.makespan + _EPS and a.cost <= b.cost + _EPS
    strictly = a.makespan < b.makespan - _EPS or a.cost < b.cost - _EPS
    return no_worse and strictly


@dataclass(frozen=True)
class ParetoCell:
    """The non-dominated menu of one (scenario, workflow) cell."""

    frontier: Tuple[str, ...]  # labels, sorted by makespan ascending
    dominated: Tuple[str, ...]

    def __contains__(self, label: str) -> bool:
        return label in self.frontier


def pareto_front(cell: Dict[str, ScheduleMetrics]) -> ParetoCell:
    """Split a cell into frontier and dominated strategies."""
    labels = list(cell)
    dominated = set()
    for a in labels:
        for b in labels:
            if a != b and dominates(cell[a], cell[b]):
                dominated.add(b)
    frontier = sorted(
        (l for l in labels if l not in dominated),
        key=lambda l: (cell[l].makespan, cell[l].cost, l),
    )
    return ParetoCell(frontier=tuple(frontier), dominated=tuple(sorted(dominated)))


def pareto_fronts(sweep: SweepResult) -> Dict[Tuple[str, str], ParetoCell]:
    """Frontier per (scenario, workflow) of a sweep."""
    return {
        (sc, wf): pareto_front(sweep.metrics[sc][wf])
        for sc in sweep.scenarios()
        for wf in sweep.workflows(sc)
    }


def render_pareto(sweep: SweepResult) -> str:
    rows: List[tuple] = []
    for (sc, wf), cell in pareto_fronts(sweep).items():
        rows.append((f"{sc}/{wf}", len(cell.frontier), ", ".join(cell.frontier)))
    return format_table(
        ["case", "size", "Pareto frontier (fast -> cheap)"],
        rows,
        title="Non-dominated strategies per evaluation cell",
        align_right=False,
    )
