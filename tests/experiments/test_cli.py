"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.artifact == "all"
        assert args.seed == 2013
        assert args.scenario == "pareto"

    def test_artifact_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])


class TestMain:
    def test_static_artifacts_to_stdout(self, capsys):
        for artifact in ("table1", "table2", "table5", "figure1", "figure2"):
            assert main([artifact]) == 0
            out = capsys.readouterr().out
            assert out.strip()

    def test_figure3_with_seed(self, capsys):
        assert main(["figure3", "--seed", "7"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_out_file(self, tmp_path):
        target = tmp_path / "t2.txt"
        assert main(["table2", "--out", str(target)]) == 0
        assert "sa-sao-paulo" in target.read_text()

    def test_profile_subcommand(self, capsys):
        assert main(["profile", "--workflow", "cybershake"]) == 0
        out = capsys.readouterr().out
        assert "cybershake" in out and "max width" in out

    def test_gantt_subcommand(self, capsys):
        assert main(
            ["gantt", "--workflow", "sequential", "--strategy", "StartParExceed-s"]
        ) == 0
        out = capsys.readouterr().out
        assert "BTU boundary" in out

    def test_quick_sweep_figure4(self, capsys):
        assert main(["figure4", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "montage" in out and "sequential" in out
        assert "cstem" not in out

    def test_quick_sweep_table3(self, capsys):
        assert main(["table3", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "pareto/montage" in out
        assert "best/" not in out

    def test_unknown_workflow_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--workflow", "nope"])

    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "AllPar1LnSDyn" in out
        assert "provisioning policies:" in out
        assert "bag_of_tasks" in out

    def test_explain_subcommand(self, capsys):
        assert main(
            ["explain", "--workflow", "montage", "--strategy", "AllParExceed-s"]
        ) == 0
        out = capsys.readouterr().out
        assert "Cost breakdown" in out and "final-BTU tails" in out
