"""Purchase options, market billing, and spot interruption times."""

import math

import pytest

from repro.cloud.platform import CloudPlatform
from repro.errors import SimulationError
from repro.market import (
    ConstantPrice,
    Market,
    MeanRevertingPrice,
    ON_DEMAND,
    PurchaseOption,
    SpotInterruptionPlan,
    StepTracePrice,
    spot,
)

PLATFORM = CloudPlatform.ec2()
SMALL = PLATFORM.itype("small")
REGION = PLATFORM.default_region
BILLING = PLATFORM.billing

SPIKE = StepTracePrice((0.0, 1000.0, 4000.0), (0.3, 1.5, 0.3))


class TestPurchaseOption:
    def test_defaults_are_the_paper(self):
        assert ON_DEMAND.kind == "on_demand"
        assert not ON_DEMAND.is_spot
        assert ON_DEMAND.label() == "on_demand"

    def test_spot_labels(self):
        assert spot().label() == "spot(inf)"
        assert spot(0.5).label() == "spot(0.5)"
        assert spot(0.5).is_spot

    def test_validation(self):
        with pytest.raises(SimulationError):
            PurchaseOption("preemptible")
        with pytest.raises(SimulationError):
            spot(0.0)
        with pytest.raises(SimulationError):
            spot(-1.0)


class TestMarketCost:
    def test_on_demand_is_exactly_fixed_price(self):
        market = Market(SPIKE)
        for uptime in (0.0, 1.0, 3600.0, 3601.0, 9999.0):
            assert market.vm_cost(
                BILLING, 0, 0.0, uptime, SMALL, REGION, ON_DEMAND
            ) == BILLING.vm_cost(uptime, SMALL, REGION)

    def test_constant_spot_scales_the_list_price(self):
        market = Market(ConstantPrice(0.35))
        got = market.vm_cost(BILLING, 0, 0.0, 3600.0, SMALL, REGION, spot())
        assert got == 0.35 * BILLING.vm_cost(3600.0, SMALL, REGION)

    def test_neutral_spot_reproduces_on_demand_exactly(self):
        market = Market(ConstantPrice(1.0))
        for uptime in (1.0, 3600.0, 7300.0):
            assert market.vm_cost(
                BILLING, 0, 0.0, uptime, SMALL, REGION, spot()
            ) == BILLING.vm_cost(uptime, SMALL, REGION)

    def test_zero_uptime_is_free(self):
        market = Market(SPIKE)
        assert market.vm_cost(BILLING, 0, 0.0, 0.0, SMALL, REGION, spot()) == 0.0

    def test_step_spot_integrates_the_paid_window(self):
        market = Market(SPIKE)
        # 1 BTU starting at t=0: 1000 s at 0.3 + 2600 s at 1.5
        expected = (
            REGION.price(SMALL) * (1000 * 0.3 + 2600 * 1.5) / BILLING.btu_seconds
        )
        got = market.vm_cost(BILLING, 0, 0.0, 3600.0, SMALL, REGION, spot())
        assert got == pytest.approx(expected)

    def test_spot_cheaper_than_on_demand_under_capped_walk(self):
        # multiplier can never exceed 1 => the integral over any window
        # is at most the fixed-price rent
        market = Market(MeanRevertingPrice(cap=1.0))
        for seed in range(5):
            for start in (0.0, 500.0, 7200.0):
                spot_cost = market.vm_cost(
                    BILLING, seed, start, 5000.0, SMALL, REGION, spot()
                )
                od_cost = BILLING.vm_cost(5000.0, SMALL, REGION)
                assert spot_cost <= od_cost + 1e-9

    def test_validation(self):
        with pytest.raises(SimulationError):
            Market(SPIKE, grace_seconds=-1.0)
        with pytest.raises(SimulationError):
            Market(SPIKE, horizon_seconds=0.0)


class TestSpotInterruption:
    PLAN = SpotInterruptionPlan(Market(SPIKE, grace_seconds=120.0), seed=0)

    def test_on_demand_never_preempted(self):
        warn, kill = self.PLAN.preemption(SMALL, REGION, ON_DEMAND, 0.0)
        assert math.isinf(warn) and math.isinf(kill)

    def test_infinite_bid_never_preempted(self):
        warn, kill = self.PLAN.preemption(SMALL, REGION, spot(), 0.0)
        assert math.isinf(warn) and math.isinf(kill)

    def test_crossing_gives_warning_then_kill(self):
        warn, kill = self.PLAN.preemption(SMALL, REGION, spot(0.5), 0.0)
        assert warn == 1000.0
        assert kill == 1120.0

    def test_underwater_bid_still_gets_grace(self):
        # rented while the price is already above the bid: the warning
        # is clamped to the rent time, so the VM still runs grace long
        warn, kill = self.PLAN.preemption(SMALL, REGION, spot(0.5), 2000.0)
        assert warn == 2000.0
        assert kill == 2120.0

    def test_after_recovery_no_crossing(self):
        warn, kill = self.PLAN.preemption(SMALL, REGION, spot(0.5), 4000.0)
        assert math.isinf(warn) and math.isinf(kill)

    def test_pure_function_of_inputs(self):
        a = self.PLAN.preemption(SMALL, REGION, spot(0.5), 0.0)
        b = SpotInterruptionPlan(Market(SPIKE, grace_seconds=120.0), 0).preemption(
            SMALL, REGION, spot(0.5), 0.0
        )
        assert a == b

    def test_walk_interruptions_deterministic_by_seed(self):
        proc = MeanRevertingPrice(mean=0.45, sigma=0.2)
        plan7 = SpotInterruptionPlan(Market(proc), seed=7)
        plan7b = SpotInterruptionPlan(Market(proc), seed=7)
        plan8 = SpotInterruptionPlan(Market(proc), seed=8)
        a = plan7.preemption(SMALL, REGION, spot(0.6), 0.0)
        assert plan7b.preemption(SMALL, REGION, spot(0.6), 0.0) == a
        # a different seed realizes a different path (and with this
        # sigma, virtually surely a different crossing)
        assert plan8.preemption(SMALL, REGION, spot(0.6), 0.0) != a

    def test_correlated_across_vms_of_one_flavor(self):
        # all spot VMs of one (flavor, region) share one path: same rent
        # time, same kill time — the correlated-reclamation hazard
        t1 = self.PLAN.preemption(SMALL, REGION, spot(0.5), 100.0)
        t2 = self.PLAN.preemption(SMALL, REGION, spot(0.5), 100.0)
        assert t1 == t2 == (1000.0, 1120.0)


class TestFaultPlanMarketFields:
    def test_spot_plan_carries_seed(self):
        from repro.simulator.faults import FaultPlan

        market = Market(SPIKE)
        plan = FaultPlan(seed=5, market=market)
        sp = plan.spot_plan()
        assert sp is not None
        assert sp.seed == 5 and sp.market is market
        assert FaultPlan().spot_plan() is None

    def test_with_seed_round_trips_market_and_boot_fields(self):
        from repro.simulator.faults import FaultPlan

        market = Market(SPIKE)
        plan = FaultPlan(
            seed=1,
            market=market,
            boot_cold_seconds=60.0,
            boot_delay_dist="deterministic",
            boot_warm_pool=2,
            boot_warm_seconds=5.0,
        )
        again = plan.with_seed(9)
        assert again.seed == 9
        assert again.market is market
        assert again.boot_cold_seconds == 60.0
        assert again.boot_delay_dist == "deterministic"
        assert again.boot_warm_pool == 2
        assert again.boot_warm_seconds == 5.0
        assert again.with_seed(1) == plan

    def test_scaled_scales_cold_and_keeps_structure(self):
        from repro.simulator.faults import FaultPlan

        market = Market(SPIKE)
        plan = FaultPlan(
            market=market,
            boot_cold_seconds=60.0,
            boot_warm_pool=2,
            boot_warm_seconds=5.0,
        )
        half = plan.scaled(0.5)
        assert half.boot_cold_seconds == 30.0
        assert half.market is market
        assert half.boot_warm_pool == 2
        assert half.boot_warm_seconds == 5.0
        zero = plan.scaled(0.0)
        assert zero.boot_cold_seconds == 0.0
        # the market is structural config, not an intensity: it stays
        assert zero.market is market

    def test_enabled_accounts_for_new_axes(self):
        from repro.simulator.faults import FaultPlan

        assert not FaultPlan().enabled
        assert FaultPlan(market=Market(SPIKE)).enabled
        assert FaultPlan(boot_cold_seconds=1.0).enabled
        assert FaultPlan(boot_warm_pool=1).enabled

    def test_boot_delay_outcome_defaults_match_boot_outcome(self):
        from repro.simulator.faults import FaultPlan

        plan = FaultPlan(seed=3, boot_fail_prob=0.2, boot_delay_rel_std=0.5)
        for attempt in range(1, 6):
            fails, factor = plan.boot_outcome("vm0", attempt)
            fails2, delay = plan.boot_delay_outcome("vm0", attempt, 45.0)
            assert fails2 == fails
            assert delay == 45.0 * factor

    def test_boot_delay_outcome_cold_warm_deterministic(self):
        from repro.simulator.faults import FaultPlan

        plan = FaultPlan(
            seed=3,
            boot_delay_rel_std=0.5,
            boot_cold_seconds=60.0,
            boot_delay_dist="deterministic",
            boot_warm_pool=1,
            boot_warm_seconds=5.0,
        )
        _, cold = plan.boot_delay_outcome("vm0", 1, 45.0)
        assert cold == 105.0  # exact: deterministic dist ignores noise
        _, warm = plan.boot_delay_outcome("vm0", 1, 45.0, warm=True)
        assert warm == 5.0

    def test_stats_dict_includes_market_counters(self):
        from repro.simulator.faults import FaultStats

        stats = FaultStats(preemptions=3, grace_warnings=2, rebids=1)
        d = stats.as_dict()
        assert d["preemptions"] == 3
        assert d["grace_warnings"] == 2
        assert d["rebids"] == 1
        assert stats.failures == 3  # preemptions count as failures
