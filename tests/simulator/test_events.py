"""Tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        fired = []
        q.push(5.0, lambda: fired.append("late"))
        q.push(1.0, lambda: fired.append("early"))
        while q:
            q.pop().action()
        assert fired == ["early", "late"]

    def test_fifo_for_simultaneous(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, lambda i=i: fired.append(i))
        while q:
            q.pop().action()
        assert fired == [0, 1, 2, 3, 4]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, lambda: None)
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, lambda: None)
        assert q and len(q) == 1

    def test_simultaneous_tie_break_is_scheduling_order(self):
        """Events at one instant fire in the exact order they were
        scheduled, even when interleaved with events at other times and
        when their actions/labels are mutually incomparable."""
        q = EventQueue()
        fired = []

        class Action:  # deliberately unorderable: no __lt__
            def __init__(self, tag):
                self.tag = tag

            def __call__(self):
                fired.append(self.tag)

        # interleave three instants; scheduling order within t=2.0 is
        # b0, b1, b2 despite pushes at other times in between
        q.push(2.0, Action("b0"), label="zzz")
        q.push(9.0, Action("c"))
        q.push(2.0, Action("b1"), label="aaa")
        q.push(0.5, Action("a"))
        q.push(2.0, Action("b2"))
        while q:
            q.pop().action()
        assert fired == ["a", "b0", "b1", "b2", "c"]

    def test_event_fields(self):
        q = EventQueue()
        ev = q.push(4.5, lambda: None, label="boot")
        assert ev.time == 4.5
        assert ev.label == "boot"
        assert q.pop() is ev

    def test_pop_empty(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)
