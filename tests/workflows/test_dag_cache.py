"""The cached-DAG contract: structural queries are memoized, mutations
invalidate, and callers can't corrupt the cache through returned lists."""

from __future__ import annotations

import pytest

from repro.errors import WorkflowError
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


@pytest.fixture
def chain() -> Workflow:
    wf = Workflow("chain")
    for i in range(3):
        wf.add_task(Task(f"t{i}", work=10.0 * (i + 1)))
    wf.add_dependency("t0", "t1", 1.0)
    wf.add_dependency("t1", "t2", 1.0)
    return wf


class TestMemoization:
    def test_queries_are_cached(self, chain):
        assert chain.topological_order() == ["t0", "t1", "t2"]
        assert "topological_order" in chain._cache
        chain.levels()
        chain.entry_tasks()
        chain.exit_tasks()
        chain.edges()
        chain.predecessors("t1")
        for key in ("levels", "entry_tasks", "exit_tasks", "edges", "adjacency"):
            assert key in chain._cache

    def test_cached_queries_stay_correct(self, chain):
        assert chain.topological_order() == chain.topological_order()
        assert chain.levels() == chain.levels()
        assert chain.level_of() == {"t0": 0, "t1": 1, "t2": 2}

    def test_validate_short_circuits(self, chain):
        chain.validate()
        assert chain.validated
        # second call must be the cached no-op path
        assert chain.validate() is chain

    def test_returned_lists_are_copies(self, chain):
        chain.topological_order().append("bogus")
        assert "bogus" not in chain.topological_order()
        chain.levels()[0].append("bogus")
        assert "bogus" not in chain.levels()[0]
        chain.successors("t0").append("bogus")
        assert chain.successors("t0") == ["t1"]
        chain.entry_tasks().clear()
        assert chain.entry_tasks() == ["t0"]


class TestInvalidation:
    def test_add_task_invalidates(self, chain):
        before = chain.topological_order()
        assert chain.validated
        chain.add_task(Task("t3", work=5.0))
        # the mutation must drop the memo and the validated flag...
        assert not chain.validated
        assert chain._cache == {}
        # ...so the next query reflects the new node, not a stale memo
        after = chain.topological_order()
        assert after != before
        assert "t3" in after

    def test_add_dependency_invalidates(self, chain):
        assert chain.levels() == [["t0"], ["t1"], ["t2"]]
        chain.add_task(Task("t3", work=5.0))
        chain.add_dependency("t0", "t3", 0.0)
        assert not chain.validated
        assert chain._cache == {}
        assert chain.levels() == [["t0"], ["t1", "t3"], ["t2"]]
        assert chain.successors("t0") == ["t1", "t3"]
        assert chain.exit_tasks() == ["t2", "t3"]

    def test_cycle_detected_after_cached_validation(self, chain):
        chain.validate()
        chain.add_dependency("t2", "t0", 0.0)
        with pytest.raises(WorkflowError, match="cycle"):
            chain.validate()

    def test_edge_data_refreshed(self, chain):
        assert ("t0", "t1", 1.0) in chain.edges()
        chain.add_dependency("t0", "t2", 2.5)
        assert ("t0", "t2", 2.5) in chain.edges()


def test_workflow_pickles_with_cache(chain):
    import pickle

    chain.topological_order()
    clone = pickle.loads(pickle.dumps(chain))
    assert clone.topological_order() == chain.topological_order()
    assert clone.level_of() == chain.level_of()
