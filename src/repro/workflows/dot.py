"""Graphviz DOT export — handy for eyeballing generated shapes against
the paper's Fig. 2."""

from __future__ import annotations

from repro.workflows.dag import Workflow


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


def to_dot(wf: Workflow) -> str:
    """Render *wf* as a DOT digraph with work/data annotations."""
    wf.validate()
    lines = [f"digraph {_quote(wf.name)} {{", "  rankdir=TB;"]
    for task in wf.tasks:
        label = f"{task.id}\\n{task.work:.0f}s"
        lines.append(f"  {_quote(task.id)} [label={_quote(label)}];")
    for u, v, gb in wf.edges():
        attr = f' [label="{gb:g}GB"]' if gb else ""
        lines.append(f"  {_quote(u)} -> {_quote(v)}{attr};")
    lines.append("}")
    return "\n".join(lines)
