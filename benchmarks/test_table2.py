"""Table II — EC2 on-demand prices (Oct 31st 2012), verified verbatim."""

import pytest

from benchmarks.conftest import save_artifact
from repro.experiments.tables import render_table2, table2_rows

_PAPER = {
    "us-east-virginia": (0.08, 0.16, 0.32, 0.64, 0.12),
    "us-west-oregon": (0.08, 0.16, 0.32, 0.64, 0.12),
    "us-west-california": (0.09, 0.18, 0.36, 0.72, 0.12),
    "eu-dublin": (0.085, 0.17, 0.34, 0.68, 0.12),
    "asia-singapore": (0.085, 0.17, 0.34, 0.68, 0.19),
    "asia-tokyo": (0.092, 0.184, 0.368, 0.736, 0.201),
    "sa-sao-paulo": (0.115, 0.230, 0.460, 0.920, 0.25),
}


def test_table2(benchmark, platform, artifact_dir):
    rows = benchmark(table2_rows, platform)
    assert len(rows) == 7
    for name, *prices in rows:
        assert tuple(prices) == pytest.approx(_PAPER[name])
    save_artifact(artifact_dir, "table2.txt", render_table2(platform))
