"""Regenerators for the paper's figures.

Each ``figureN_*`` function returns plain data (what the paper plots);
each ``render_figureN`` turns that into terminal text via the ascii
plotting helpers, so the benchmark harness prints the same series the
paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.cloud.platform import CloudPlatform
from repro.core.metrics import evaluate
from repro.core.provisioning.base import provisioning_policy
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.experiments.runner import SweepResult
from repro.util.ascii_plot import ascii_bars, ascii_scatter
from repro.util.rng import ensure_rng
from repro.util.tables import format_table
from repro.workloads.pareto import (
    FEITELSON_RUNTIME_SHAPE,
    FEITELSON_SCALE,
    pareto_cdf,
    pareto_sample,
)
from repro.workflows.dag import Workflow
from repro.workflows.task import Task
from repro.workflows.generators import cstem, mapreduce, montage, sequential


# ----------------------------------------------------------------------
# Figure 1 — the five policies on the CSTEM sub-workflow
# ----------------------------------------------------------------------
def figure1_subworkflow() -> Workflow:
    """The paper's worked example: one initial task + six children."""
    wf = Workflow("cstem-sub")
    init = wf.add_task(Task("t0", 1800.0, "init"))
    for i, work in enumerate((2400.0, 2000.0, 1600.0, 1200.0, 900.0, 600.0)):
        child = wf.add_task(Task(f"t{i + 1}", work, "child"))
        wf.add_dependency(init.id, child.id, 0.01)
    return wf.validate()


def figure1_rows(platform: CloudPlatform | None = None) -> List[tuple]:
    """Per-policy (VMs, BTUs, cost, makespan, idle) on the Fig. 1 example."""
    platform = platform or CloudPlatform.ec2()
    wf = figure1_subworkflow()
    small = platform.itype("small")
    rows = []
    for policy in (
        "OneVMperTask",
        "StartParNotExceed",
        "StartParExceed",
        "AllParNotExceed",
        "AllParExceed",
    ):
        if policy.startswith("AllPar"):
            algo = AllParScheduler(exceed=policy == "AllParExceed")
        else:
            algo = HeftScheduler(provisioning_policy(policy))
        sched = algo.schedule(wf, platform, itype=small)
        m = evaluate(sched, label=policy)
        rows.append(
            (policy, m.vm_count, m.btus, m.cost, m.makespan, m.idle_seconds)
        )
    return rows


def render_figure1(platform: CloudPlatform | None = None) -> str:
    from repro.experiments.gantt import gantt

    platform = platform or CloudPlatform.ec2()
    table = format_table(
        ["policy", "VMs", "BTUs", "cost $", "makespan s", "idle s"],
        figure1_rows(platform),
        title="Figure 1 — provisioning policies on the CSTEM sub-workflow",
    )
    wf = figure1_subworkflow()
    small = platform.itype("small")
    charts = []
    for policy in (
        "OneVMperTask",
        "StartParNotExceed",
        "StartParExceed",
        "AllParNotExceed",
        "AllParExceed",
    ):
        if policy.startswith("AllPar"):
            algo = AllParScheduler(exceed=policy == "AllParExceed")
        else:
            algo = HeftScheduler(provisioning_policy(policy))
        charts.append(gantt(algo.schedule(wf, platform, itype=small)))
    return table + "\n\n" + "\n\n".join(charts)


# ----------------------------------------------------------------------
# Figure 2 — the four workflow shapes
# ----------------------------------------------------------------------
def figure2_summaries() -> List[Dict[str, object]]:
    return [wf.summary() for wf in (montage(), cstem(), mapreduce(), sequential())]


def render_figure2() -> str:
    summaries = figure2_summaries()
    headers = [
        "workflow",
        "tasks",
        "edges",
        "entries",
        "exits",
        "levels",
        "max par",
        "CP tasks",
    ]
    rows = [
        (
            s["name"],
            s["tasks"],
            s["edges"],
            s["entry_tasks"],
            s["exit_tasks"],
            s["levels"],
            s["max_parallelism"],
            s["critical_path_tasks"],
        )
        for s in summaries
    ]
    return format_table(
        headers, rows, title="Figure 2 — workflow shapes (structure stats)"
    )


# ----------------------------------------------------------------------
# Figure 3 — CDF of the Pareto execution times
# ----------------------------------------------------------------------
def figure3_cdf(
    n_samples: int = 100_000, seed: int = 2013
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Empirical CDF over the paper's x-range plus the closed form.

    Returns ``(x, empirical, analytic)`` for x in [500, 4000].
    """
    rng = ensure_rng(seed)
    draws = pareto_sample(rng, n_samples, FEITELSON_RUNTIME_SHAPE, FEITELSON_SCALE)
    x = np.linspace(FEITELSON_SCALE, 4000.0, 50)
    empirical = np.array([(draws <= xi).mean() for xi in x])
    analytic = pareto_cdf(x)
    return x, empirical, analytic


def render_figure3(n_samples: int = 100_000, seed: int = 2013) -> str:
    x, emp, ana = figure3_cdf(n_samples, seed)
    rows = [
        (f"{xi:7.0f}", float(e), float(a))
        for xi, e, a in zip(x[::7], emp[::7], ana[::7])
    ]
    table = format_table(
        ["exec time s", "empirical CDF", "analytic CDF"],
        rows,
        float_fmt=".4f",
        title="Figure 3 — Pareto(shape=2, scale=500) execution-time CDF",
    )
    bars = ascii_bars(
        {f"{xi:5.0f}s": float(e) * 100 for xi, e in zip(x[::5], emp[::5])},
        width=50,
        unit="%",
    )
    return table + "\n\n" + bars


# ----------------------------------------------------------------------
# Figure 4 — % cost loss vs % makespan gain per workflow
# ----------------------------------------------------------------------
def figure4_points(
    sweep: SweepResult, workflow: str, scenario: str = "pareto"
) -> Dict[str, Tuple[float, float]]:
    """(gain%, loss%) per strategy label, the paper's scatter series."""
    cell = sweep.metrics[scenario][workflow]
    return {label: (m.gain_pct, m.loss_pct) for label, m in cell.items()}


def figure4_svg(sweep: SweepResult, workflow: str, scenario: str = "pareto") -> str:
    """Figure 4 for one workflow as a standalone SVG document."""
    from repro.util.svg_plot import svg_scatter

    return svg_scatter(
        figure4_points(sweep, workflow, scenario),
        title=f"Figure 4 ({workflow}, {scenario}) — % $ loss vs % gain",
        xlabel="% gain",
        ylabel="% $ loss",
    )


def figure5_svg(sweep: SweepResult, workflow: str, scenario: str = "pareto") -> str:
    """Figure 5 for one workflow as a standalone SVG document."""
    from repro.util.svg_plot import svg_bars

    return svg_bars(
        figure5_idle(sweep, workflow, scenario),
        title=f"Figure 5 ({workflow}, {scenario}) — total idle time",
        unit="s",
    )


def render_figure4(sweep: SweepResult, scenario: str = "pareto") -> str:
    blocks = []
    for wf_name in sweep.workflows(scenario):
        points = figure4_points(sweep, wf_name, scenario)
        plot = ascii_scatter(
            points,
            xlabel="% gain",
            ylabel="% $ loss",
            width=70,
            height=22,
        )
        blocks.append(
            f"Figure 4 ({wf_name}, {scenario}) — cost loss vs makespan gain\n{plot}"
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Figure 5 — total idle time per strategy per workflow
# ----------------------------------------------------------------------
def figure5_idle(
    sweep: SweepResult, workflow: str, scenario: str = "pareto"
) -> Dict[str, float]:
    cell = sweep.metrics[scenario][workflow]
    return {label: m.idle_seconds for label, m in cell.items()}


def render_figure5(sweep: SweepResult, scenario: str = "pareto") -> str:
    blocks = []
    for wf_name in sweep.workflows(scenario):
        bars = ascii_bars(figure5_idle(sweep, wf_name, scenario), unit="s")
        blocks.append(f"Figure 5 ({wf_name}, {scenario}) — total idle time\n{bars}")
    return "\n\n".join(blocks)
