"""Persist and reload sweep results.

Running the full 19 x 4 x 3 grid takes seconds today but grows with
workflow size; storing a :class:`~repro.experiments.runner.SweepResult`
as JSON lets reports, notebooks and regression diffs work from saved
runs.  Only metrics are stored (schedules are reproducible from the
seed); the platform is re-created by the caller.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.cloud.platform import CloudPlatform
from repro.core.metrics import ScheduleMetrics
from repro.errors import ExperimentError
from repro.experiments.runner import SweepResult

_FORMAT_VERSION = 1


def _metrics_to_dict(m: ScheduleMetrics) -> Dict[str, Any]:
    return {
        "label": m.label,
        "makespan": m.makespan,
        "cost": m.cost,
        "idle_seconds": m.idle_seconds,
        "vm_count": m.vm_count,
        "btus": m.btus,
        "gain_pct": m.gain_pct,
        "loss_pct": m.loss_pct,
    }


def _metrics_from_dict(d: Dict[str, Any]) -> ScheduleMetrics:
    try:
        return ScheduleMetrics(
            label=d["label"],
            makespan=float(d["makespan"]),
            cost=float(d["cost"]),
            idle_seconds=float(d["idle_seconds"]),
            vm_count=int(d["vm_count"]),
            btus=int(d["btus"]),
            gain_pct=float(d["gain_pct"]),
            loss_pct=float(d["loss_pct"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(f"malformed metrics record: {exc!r}") from exc


def sweep_to_dict(sweep: SweepResult) -> Dict[str, Any]:
    return {
        "format": _FORMAT_VERSION,
        "metrics": {
            sc: {
                wf: {label: _metrics_to_dict(m) for label, m in cell.items()}
                for wf, cell in by_wf.items()
            }
            for sc, by_wf in sweep.metrics.items()
        },
        "references": {
            sc: {wf: _metrics_to_dict(m) for wf, m in by_wf.items()}
            for sc, by_wf in sweep.references.items()
        },
    }


def save_sweep(sweep: SweepResult, path: str | Path) -> None:
    Path(path).write_text(json.dumps(sweep_to_dict(sweep), indent=1))


def load_sweep(path: str | Path, platform: CloudPlatform | None = None) -> SweepResult:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot load sweep from {path}: {exc}") from exc
    if data.get("format") != _FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported sweep format {data.get('format')!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    result = SweepResult(platform=platform or CloudPlatform.ec2())
    for sc, by_wf in data["metrics"].items():
        result.metrics[sc] = {
            wf: {label: _metrics_from_dict(m) for label, m in cell.items()}
            for wf, cell in by_wf.items()
        }
    for sc, by_wf in data.get("references", {}).items():
        result.references[sc] = {
            wf: _metrics_from_dict(m) for wf, m in by_wf.items()
        }
    return result


def diff_sweeps(
    old: SweepResult, new: SweepResult, rel_tolerance: float = 1e-9
) -> Dict[str, Any]:
    """Compare two sweeps cell by cell.

    Returns ``{"added": [...], "removed": [...], "changed": [...]}`` where
    each entry is the ``scenario/workflow/strategy`` key; "changed" lists
    cells whose makespan or cost moved by more than *rel_tolerance*
    relatively — the regression-tracking primitive.
    """
    def keys(sweep: SweepResult):
        return {
            (sc, wf, label)
            for sc, wf, label, _ in sweep.rows()
        }

    old_keys, new_keys = keys(old), keys(new)
    changed = []
    for key in sorted(old_keys & new_keys):
        sc, wf, label = key
        a = old.get(sc, wf, label)
        b = new.get(sc, wf, label)
        for attr in ("makespan", "cost"):
            va, vb = getattr(a, attr), getattr(b, attr)
            denom = max(abs(va), abs(vb), 1e-12)
            if abs(va - vb) / denom > rel_tolerance:
                changed.append("/".join(key))
                break
    return {
        "added": sorted("/".join(k) for k in new_keys - old_keys),
        "removed": sorted("/".join(k) for k in old_keys - new_keys),
        "changed": changed,
    }
