"""Tests for realized-critical-path analysis."""

import pytest

from repro.cloud.platform import CloudPlatform
from repro.core.allocation.heft import HeftScheduler
from repro.core.allocation.level import AllParScheduler
from repro.core.critical import realized_critical_path
from repro.workloads.base import apply_model
from repro.workloads.pareto import ParetoModel
from repro.workflows.generators import montage, sequential


@pytest.fixture(scope="module")
def platform():
    return CloudPlatform.ec2()


class TestPath:
    def test_chain_critical_everywhere(self, platform):
        sched = HeftScheduler("StartParExceed").schedule(sequential(4), platform)
        report = realized_critical_path(sched)
        assert report.path == tuple(f"step_{i:03d}" for i in range(4))
        assert all(report.slack[t] == pytest.approx(0.0) for t in report.path)

    def test_diamond_heavy_branch_critical(self, platform, diamond):
        sched = HeftScheduler("OneVMperTask").schedule(diamond, platform)
        report = realized_critical_path(sched)
        assert report.path == ("A", "B", "D")
        assert all(r == "dependency" for r in report.reasons)
        # the light branch has slack: B's path is longer than C's
        assert report.slack["C"] > 0

    def test_serialized_schedule_blames_the_vm(self, platform, fan7):
        """Packing the fan onto one VM makes machine contention, not
        dependencies, the bottleneck."""
        sched = HeftScheduler("StartParExceed").schedule(fan7, platform)
        report = realized_critical_path(sched)
        assert report.bottleneck_fraction_vm > 0.5

    def test_parallel_schedule_blames_dependencies(self, platform, fan7):
        sched = HeftScheduler("OneVMperTask").schedule(fan7, platform)
        report = realized_critical_path(sched)
        assert report.bottleneck_fraction_vm == 0.0

    def test_path_ends_at_makespan_maker(self, platform):
        wf = apply_model(montage(), ParetoModel(), seed=6)
        sched = AllParScheduler(exceed=True).schedule(wf, platform)
        report = realized_critical_path(sched)
        assert sched.finish(report.path[-1]) == pytest.approx(sched.makespan)

    def test_path_is_contiguous_blocking_chain(self, platform):
        wf = apply_model(montage(), ParetoModel(), seed=6)
        sched = HeftScheduler("StartParNotExceed").schedule(wf, platform)
        report = realized_critical_path(sched)
        for a, b, reason in zip(report.path, report.path[1:], report.reasons):
            if reason == "vm":
                assert sched.vm_of(a) is sched.vm_of(b)
                assert sched.finish(a) == pytest.approx(sched.start(b))
            else:
                assert a in sched.workflow.predecessors(b)


class TestSlack:
    def test_slack_nonnegative_and_critical_zero(self, platform):
        wf = apply_model(montage(), ParetoModel(), seed=9)
        sched = HeftScheduler("OneVMperTask").schedule(wf, platform)
        report = realized_critical_path(sched)
        assert all(s >= 0 for s in report.slack.values())
        for tid in report.path:
            assert report.slack[tid] == pytest.approx(0.0, abs=1e-6)

    def test_slack_bounded_by_makespan(self, platform, diamond):
        sched = HeftScheduler("OneVMperTask").schedule(diamond, platform)
        report = realized_critical_path(sched)
        assert all(s <= sched.makespan for s in report.slack.values())
