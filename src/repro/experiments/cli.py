"""Command-line entry point: ``repro-experiments``.

Regenerates the paper's figures/tables as text, profiles workflows, and
draws schedules::

    repro-experiments all --seed 2013
    repro-experiments all --jobs 4
    repro-experiments figure4 --scenario best --quick
    repro-experiments table3 --out results.txt
    repro-experiments replicate --seeds 10 --jobs 4
    repro-experiments profile --workflow cybershake
    repro-experiments gantt --workflow montage --strategy AllParExceed-m
    repro-experiments faults --workflow montage --recovery replan --jobs 4
    repro-experiments tune --workflow montage --deadline 9000 --budget 15

``--jobs N`` fans the sweep's (scenario, workflow) cells — and
``replicate``'s seeds — out over N workers; the default (``--jobs 1``)
runs serially.  Results, and therefore every artifact byte, are
identical either way.

Observability: ``--trace`` (or ``--trace-out PATH``) records a Chrome
``trace_event`` file of the run, loadable in ``chrome://tracing`` or
Perfetto; any run with a file output also writes a run manifest
(``--manifest PATH`` overrides the destination, or forces one for
stdout runs) from which the exact invocation can be replayed.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from pathlib import Path

from repro.cloud.platform import CloudPlatform
from repro.experiments import figures, tables
from repro.experiments.config import paper_workflows, strategy
from repro.experiments.gantt import gantt
from repro.experiments.report import full_report
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scenario
from repro.obs.manifest import build_manifest, default_manifest_path, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.util.tables import format_table
from repro.workflows.analysis import profile
from repro.workflows.generators import (
    bag_of_tasks,
    cstem,
    cybershake,
    epigenomics,
    fork_join,
    ligo,
    mapreduce,
    montage,
    sequential,
    sipht,
)

_SWEEP_ARTIFACTS = {"figure4", "figure5", "table3", "table4", "all", "export"}
_ARTIFACTS = [
    "all",
    "export",
    "replicate",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "faults",
    "pricing",
    "service",
    "tune",
    "profile",
    "gantt",
    "explain",
    "list",
]

_WORKFLOWS = {
    "montage": montage,
    "cstem": cstem,
    "mapreduce": mapreduce,
    "sequential": sequential,
    "fork_join": fork_join,
    "epigenomics": epigenomics,
    "cybershake": cybershake,
    "ligo": ligo,
    "sipht": sipht,
    "bag_of_tasks": bag_of_tasks,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    parser.add_argument("artifact", choices=_ARTIFACTS, nargs="?", default="all")
    parser.add_argument("--seed", type=int, default=2013, help="sweep RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel workers for sweep/replicate (default 1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="execution backend (default: serial for --jobs 1, "
        "process pool otherwise)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        help="number of replication seeds for the replicate artifact",
    )
    parser.add_argument(
        "--scenario",
        choices=["pareto", "best", "worst"],
        default="pareto",
        help="scenario for figure4/figure5 rendering",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sweep (Pareto scenario, Montage + Sequential only)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="replay every schedule through the discrete-event simulator",
    )
    parser.add_argument(
        "--workflow",
        choices=sorted(_WORKFLOWS),
        default="montage",
        help="workflow for the profile/gantt artifacts",
    )
    parser.add_argument(
        "--strategy",
        default="StartParNotExceed-s",
        help="Figure-4 strategy label for the gantt artifact",
    )
    parser.add_argument(
        "--fault-intensities",
        default="0,0.5,1,2",
        help="comma-separated intensity grid for the faults artifact",
    )
    parser.add_argument(
        "--fault-seeds",
        type=int,
        default=3,
        help="fault-sample replications per (strategy, intensity) cell",
    )
    parser.add_argument(
        "--recovery",
        choices=["retry", "resubmit", "replan"],
        default="retry",
        help="recovery policy for the faults artifact",
    )
    parser.add_argument(
        "--fault-task-prob",
        type=float,
        default=0.1,
        help="per-attempt transient task failure probability (base plan)",
    )
    parser.add_argument(
        "--fault-crash-mtbf",
        type=float,
        default=28800.0,
        help="mean VM uptime before a crash, seconds (base plan; 0 disables)",
    )
    parser.add_argument(
        "--fault-boot-prob",
        type=float,
        default=0.05,
        help="per-attempt VM boot failure probability (base plan)",
    )
    parser.add_argument(
        "--price-scenarios",
        default="on_demand,spot_calm,spot_spike,spot_volatile",
        help="comma-separated price scenarios for the pricing artifact",
    )
    parser.add_argument(
        "--boot-settings",
        default="prebooted,cold_start",
        help="comma-separated boot regimes for the pricing artifact",
    )
    parser.add_argument(
        "--price-seeds",
        type=int,
        default=3,
        help="market-sample replications per pricing grid cell",
    )
    parser.add_argument(
        "--arrivals",
        type=int,
        default=1000,
        help="workflow submissions for the service artifact",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=50,
        help="tenant population for the service artifact",
    )
    parser.add_argument(
        "--interarrival",
        type=float,
        default=180.0,
        help="mean seconds between submissions (service artifact)",
    )
    parser.add_argument(
        "--admission",
        choices=["fifo", "fair", "budget"],
        default="fifo",
        help="admission/queueing policy for the service artifact",
    )
    parser.add_argument(
        "--tenant-budget",
        type=float,
        default=0.0,
        help="per-tenant USD budget for the service artifact "
        "(0 = unconstrained)",
    )
    parser.add_argument(
        "--policy",
        default="StartParNotExceed",
        help="online provisioning policy for the service artifact",
    )
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=32,
        help="concurrently executing workflows in the service "
        "(0 = unlimited)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="makespan bound in seconds for the tune artifact",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="cost bound in USD for the tune artifact",
    )
    parser.add_argument(
        "--max-vms",
        type=int,
        default=None,
        help="rented-VM cap for the tune artifact",
    )
    parser.add_argument(
        "--candidates",
        type=int,
        default=24,
        help="configurations sampled by the tune artifact's search",
    )
    parser.add_argument(
        "--eta",
        type=int,
        default=2,
        help="successive-halving cull factor for the tune artifact",
    )
    parser.add_argument(
        "--keep-final",
        type=int,
        default=4,
        help="survivors evaluated at top fidelity by the tune artifact",
    )
    parser.add_argument(
        "--tune-seed",
        type=int,
        default=0,
        help="search RNG seed for the tune artifact (--seed stays the "
        "workflow seed)",
    )
    parser.add_argument("--out", help="write the report to a file instead of stdout")
    parser.add_argument(
        "--out-dir",
        default="artifacts",
        help="directory for the `export` artifact bundle",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a Chrome trace_event file of the run "
        "(chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="trace destination (implies --trace; default <out>.trace.json, "
        "or repro-trace.json for stdout runs)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="write the run manifest here (default: next to --out/--out-dir; "
        "stdout-only runs write one only when this is given)",
    )
    return parser


def _render_profile(workflow_name: str) -> str:
    p = profile(_WORKFLOWS[workflow_name]())
    rows = [
        ("tasks", p.tasks),
        ("edges", p.edges),
        ("levels", p.levels),
        ("max width", p.max_width),
        ("avg width", p.avg_width),
        ("serial fraction", p.serial_fraction),
        ("level-skip fraction", p.level_skip_fraction),
        ("runtime CV", p.runtime_cv),
        ("mean runtime s", p.mean_runtime),
        ("total work s", p.total_work),
        ("critical path s", p.critical_path_seconds),
        ("total data GB", p.total_data_gb),
        ("CCR", p.ccr),
        ("parallel efficiency", p.parallel_efficiency),
    ]
    return format_table(
        ["statistic", "value"],
        rows,
        float_fmt=".3f",
        title=f"Workflow profile — {p.name}",
    )


def _render_gantt(workflow_name: str, strategy_label: str, platform) -> str:
    wf = _WORKFLOWS[workflow_name]()
    sched = strategy(strategy_label).run(wf, platform)
    return gantt(sched)


def _manifest_config(args: argparse.Namespace) -> dict:
    """The resolved CLI configuration, as recorded in the manifest."""
    return {k: v for k, v in vars(args).items() if k != "artifact"}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    t0 = time.perf_counter()
    trace_on = args.trace or args.trace_out is not None
    tracer = Tracer() if trace_on else None
    metrics = MetricsRegistry()
    platform = CloudPlatform.ec2()
    sweep = None
    outputs: list = []
    if args.artifact in _SWEEP_ARTIFACTS:
        if args.quick:
            wfs = paper_workflows()
            sweep = run_sweep(
                platform=platform,
                workflows={k: wfs[k] for k in ("montage", "sequential")},
                scenarios=[scenario("pareto", platform)],
                seed=args.seed,
                verify=args.verify,
                jobs=args.jobs,
                backend=args.backend,
                tracer=tracer,
                metrics=metrics,
            )
        else:
            sweep = run_sweep(
                platform=platform,
                seed=args.seed,
                verify=args.verify,
                jobs=args.jobs,
                backend=args.backend,
                tracer=tracer,
                metrics=metrics,
            )

    # The metrics registry is ambient for locally-computed artifacts so
    # builders/executors deep in the call tree feed it.  The parallel
    # fan-out artifacts (faults, replicate) are excluded: their workers
    # do not inherit the context, and a serial-only leak would break the
    # counters' backend-independence guarantee.
    ambient = args.artifact not in ("faults", "pricing", "replicate", "tune")
    with contextlib.ExitStack() as scope:
        if ambient:
            scope.enter_context(metrics.activate())
        if tracer is not None:
            scope.enter_context(
                tracer.span(f"artifact:{args.artifact}", cat="cli")
            )
        text = _run_artifact(args, platform, sweep, outputs)

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        outputs.append(str(args.out))
    else:
        sys.stdout.write(text + "\n")

    if tracer is not None:
        trace_path = args.trace_out or (
            f"{args.out}.trace.json" if args.out else "repro-trace.json"
        )
        tracer.write_chrome(trace_path)
        outputs.append(str(trace_path))
        sys.stderr.write(f"trace: {trace_path}\n")

    manifest_path = None
    if args.manifest:
        manifest_path = Path(args.manifest)
    elif args.out:
        manifest_path = default_manifest_path(args.out)
    elif args.artifact == "export":
        manifest_path = default_manifest_path(args.out_dir)
    if manifest_path is not None:
        simulated = metrics.get("sim.simulated_seconds")
        manifest = build_manifest(
            artifact=args.artifact,
            config=_manifest_config(args),
            seed=args.seed,
            outputs=outputs,
            counters=metrics.as_dict(),
            wall_seconds=time.perf_counter() - t0,
            simulated_seconds=simulated if simulated else None,
        )
        write_manifest(manifest_path, manifest)
        sys.stderr.write(f"manifest: {manifest_path}\n")
    return 0


def _run_artifact(args, platform, sweep, outputs) -> str:
    """Produce one artifact's text; file side-outputs land in *outputs*."""
    if args.artifact == "export":
        from repro.experiments.export import export_all

        written = export_all(args.out_dir, sweep=sweep, seed=args.seed)
        outputs.extend(str(p) for p in written)
        return (
            "\n".join(str(p) for p in written)
            + f"\nwrote {len(written)} artifacts to {args.out_dir}"
        )
    if args.artifact == "replicate":
        from repro.experiments.replication import render_replication, replicate

        results = replicate(
            range(args.seed, args.seed + args.seeds),
            platform=platform,
            jobs=args.jobs,
            backend=args.backend,
        )
        text = render_replication(results)
    elif args.artifact == "all":
        text = full_report(sweep)
    elif args.artifact == "figure1":
        text = figures.render_figure1(platform)
    elif args.artifact == "figure2":
        text = figures.render_figure2()
    elif args.artifact == "figure3":
        text = figures.render_figure3(seed=args.seed)
    elif args.artifact == "figure4":
        text = figures.render_figure4(sweep, scenario="pareto" if args.quick else args.scenario)
    elif args.artifact == "figure5":
        text = figures.render_figure5(sweep, scenario="pareto" if args.quick else args.scenario)
    elif args.artifact == "table1":
        text = tables.render_table1()
    elif args.artifact == "table2":
        text = tables.render_table2(platform)
    elif args.artifact == "table3":
        text = tables.render_table3(sweep)
    elif args.artifact == "table4":
        text = tables.render_table4(sweep)
    elif args.artifact == "table5":
        text = tables.render_table5(platform)
    elif args.artifact == "faults":
        from repro.experiments.faults import render_fault_sweep, run_fault_sweep
        from repro.simulator.faults import FaultPlan

        base_plan = FaultPlan(
            task_fail_prob=args.fault_task_prob,
            vm_crash_rate=(
                1.0 / args.fault_crash_mtbf if args.fault_crash_mtbf > 0 else 0.0
            ),
            boot_fail_prob=args.fault_boot_prob,
        )
        intensities = [
            float(x) for x in args.fault_intensities.split(",") if x.strip()
        ]
        if args.quick:
            intensities = intensities[:2] or [0.0, 1.0]
        fault_sweep = run_fault_sweep(
            platform=platform,
            workflow=_WORKFLOWS[args.workflow](),
            workflow_name=args.workflow,
            base_plan=base_plan,
            intensities=intensities,
            fault_seeds=1 if args.quick else args.fault_seeds,
            recovery=args.recovery,
            jobs=args.jobs,
            backend=args.backend,
        )
        text = render_fault_sweep(fault_sweep)
    elif args.artifact == "pricing":
        from repro.experiments.pricing import (
            paper_boot_settings,
            render_pricing_sweep,
            run_pricing_sweep,
        )
        from repro.experiments.scenarios import price_scenario

        scenarios = [
            price_scenario(name)
            for name in args.price_scenarios.split(",")
            if name.strip()
        ]
        boot_map = {b.name: b for b in paper_boot_settings()}
        try:
            boots = [
                boot_map[name.strip()]
                for name in args.boot_settings.split(",")
                if name.strip()
            ]
        except KeyError as exc:
            raise SystemExit(
                f"unknown boot setting {exc.args[0]!r}; "
                f"known: {', '.join(sorted(boot_map))}"
            )
        if args.quick:
            scenarios = scenarios[:2]
        pricing_sweep = run_pricing_sweep(
            platform=platform,
            workflow=_WORKFLOWS[args.workflow](),
            workflow_name=args.workflow,
            scenarios=scenarios,
            boots=boots,
            seeds=1 if args.quick else args.price_seeds,
            jobs=args.jobs,
            backend=args.backend,
        )
        text = render_pricing_sweep(pricing_sweep)
    elif args.artifact == "service":
        from repro.core.constraints import Constraints
        from repro.experiments.service import (
            ServiceCell,
            build_requests,
            render_service,
        )
        from repro.service.loop import run_service

        # --tenant-budget is one spelling of the library-wide
        # Constraints object; the budget guard enforces it per tenant
        limits = (
            Constraints(budget=args.tenant_budget)
            if args.tenant_budget > 0
            else None
        )
        cell = ServiceCell(
            platform=platform,
            policy=args.policy,
            admission=args.admission,
            count=100 if args.quick else args.arrivals,
            tenants=10 if args.quick else args.tenants,
            mean_interarrival=args.interarrival,
            seed=args.seed,
            budget=limits.budget if limits is not None else float("inf"),
            max_concurrent=args.max_concurrent or None,
        )
        result = run_service(
            build_requests(cell),
            platform,
            policy=cell.policy,
            admission=cell.admission,
            constraints=limits if cell.admission == "budget" else None,
            max_concurrent=cell.max_concurrent,
        )
        text = render_service(
            result,
            title=(
                f"WaaS service — {cell.count} workflows, {cell.tenants} "
                f"tenants, policy={cell.policy}, admission={cell.admission}, "
                f"seed={cell.seed}"
            ),
        )
    elif args.artifact == "tune":
        from repro.core.constraints import Constraints
        from repro.tune import autotune

        limits = Constraints(
            deadline=args.deadline, budget=args.budget, max_vms=args.max_vms
        )
        tuned = autotune(
            constraints=limits,
            workflow_name=args.workflow,
            scenario=args.scenario,
            workflow_seed=args.seed,
            n_candidates=6 if args.quick else args.candidates,
            eta=args.eta,
            keep_final=args.keep_final,
            seed=args.tune_seed,
            jobs=args.jobs,
            backend=args.backend,
            on_infeasible="return",
        )
        text = tuned.summary()
    elif args.artifact == "profile":
        text = _render_profile(args.workflow)
    elif args.artifact == "gantt":
        text = _render_gantt(args.workflow, args.strategy, platform)
    elif args.artifact == "list":
        from repro.core.allocation.base import SCHEDULING_ALGORITHMS
        from repro.core.provisioning.base import PROVISIONING_POLICIES
        from repro.experiments.config import paper_strategies

        text = "\n".join(
            [
                "figure-4 strategies: "
                + ", ".join(s.label for s in paper_strategies()),
                "provisioning policies: "
                + ", ".join(sorted(PROVISIONING_POLICIES)),
                "scheduling algorithms: "
                + ", ".join(sorted(SCHEDULING_ALGORITHMS)),
                "workflows: " + ", ".join(sorted(_WORKFLOWS)),
            ]
        )
    else:  # explain
        from repro.core.explain import explain, render_explanation

        wf = _WORKFLOWS[args.workflow]()
        sched = strategy(args.strategy).run(wf, platform)
        text = render_explanation(explain(sched))
    return text


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
