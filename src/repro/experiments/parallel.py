"""Parallel execution backends for the experiment layer.

The paper's evaluation grid (scenarios x workflows x strategies) and the
multi-seed replication layer are embarrassingly parallel: every
(scenario, workflow) cell and every replication seed is an independent
unit of work.  This module provides the :class:`ExecutionBackend`
abstraction — serial, thread pool, or process pool on top of
:mod:`concurrent.futures` — that ``run_sweep`` fans out over cells and
``replicate`` fans out over seeds.

Determinism contract
--------------------
Parallel results are *identical* to serial ones, not merely
statistically equivalent:

* each work unit gets its own child :class:`numpy.random.SeedSequence`
  spawned up front by index (``spawn_seeds``), so the draws depend only
  on the unit's position in the grid, never on scheduling order;
* ``ExecutionBackend.map`` preserves input order, so the merge is
  order-independent by construction.

The process backend requires every object shipped to a worker to be
picklable.  The paper's scenarios and strategies are (their factories
are classes or :func:`functools.partial` objects); custom specs built
from lambdas or closures only work with the ``serial`` and ``thread``
backends.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, TypeVar

import numpy as np

from repro.cloud.platform import CloudPlatform
from repro.core.baseline import reference_schedule
from repro.core.metrics import ScheduleMetrics, compare_to_reference
from repro.errors import ExperimentError
from repro.experiments.config import StrategySpec
from repro.experiments.scenarios import Scenario
from repro.simulator.executor import simulate_schedule
from repro.workflows.dag import Workflow

T = TypeVar("T")
R = TypeVar("R")

#: label the runner attaches to the reference row of every cell
REFERENCE_LABEL = "OneVMperTask-s (reference)"


def default_jobs() -> int:
    """Worker count used when a parallel backend is built without one."""
    return os.cpu_count() or 1


class ExecutionBackend(ABC):
    """Strategy object deciding *where* independent work units run."""

    #: registry name; also what ``describe()`` and the CLI report
    name: str = "abstract"

    @abstractmethod
    def map(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> List[R]:  # pragma: no cover - interface
        """Apply *fn* to every item, returning results in input order."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run everything in the calling thread (the historical behavior)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared plumbing for the concurrent.futures-based backends."""

    _executor_cls: type

    def __init__(self, jobs: int | None = None) -> None:
        jobs = default_jobs() if jobs is None else int(jobs)
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def describe(self) -> str:
        return f"{self.name}({self.jobs})"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with self._executor_cls(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadBackend(_PoolBackend):
    """Thread pool: zero pickling constraints, but the GIL caps the
    speedup of the pure-python scheduling hot path."""

    name = "thread"
    _executor_cls = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """Process pool: true multi-core execution; work units must pickle."""

    name = "process"
    _executor_cls = ProcessPoolExecutor


BACKENDS: Dict[str, type] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(
    backend: "str | ExecutionBackend | None" = None, jobs: int | None = None
) -> ExecutionBackend:
    """Resolve the (backend, jobs) pair every experiment entry point takes.

    ``backend`` may be an :class:`ExecutionBackend` instance (returned
    as-is), a registry name (``"serial"``, ``"thread"``, ``"process"``),
    or ``None``, which picks serial for ``jobs`` in (None, 0, 1) and a
    process pool otherwise — processes, not threads, because scheduling
    is CPU-bound python code.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        if jobs is None or jobs <= 1:
            return SerialBackend()
        return ProcessBackend(jobs)
    name = str(backend).lower()
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown backend {backend!r}; known: {sorted(BACKENDS)}"
        ) from None
    if cls is SerialBackend:
        return SerialBackend()
    return cls(jobs)


# ----------------------------------------------------------------------
# sweep fan-out: one unit per (scenario, workflow) cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One independent (scenario, workflow) cell of the evaluation grid."""

    scenario: Scenario
    workflow_name: str
    shape: Workflow
    strategies: Sequence[StrategySpec]
    platform: CloudPlatform
    seed: np.random.SeedSequence
    verify: bool = False


@dataclass(frozen=True)
class CellResult:
    """Everything ``run_sweep`` merges back from one cell."""

    scenario: str
    workflow: str
    reference: ScheduleMetrics
    metrics: Dict[str, ScheduleMetrics] = field(default_factory=dict)


def run_cell(cell: SweepCell) -> CellResult:
    """Evaluate every strategy of one grid cell (worker entry point).

    Reconstructs the cell RNG from its :class:`~numpy.random.SeedSequence`
    exactly as the serial runner would, so results are identical no
    matter which worker (or machine) runs the cell.
    """
    from repro.experiments.runner import run_strategy

    rng = np.random.default_rng(cell.seed)
    concrete = cell.scenario.apply(cell.shape, rng)
    ref = reference_schedule(concrete, cell.platform)
    if cell.verify:
        simulate_schedule(ref, check=True)
    reference = compare_to_reference(ref, ref, label=REFERENCE_LABEL)
    row: Dict[str, ScheduleMetrics] = {}
    for spec in cell.strategies:
        row[spec.label] = run_strategy(
            spec, concrete, cell.platform, reference=ref, verify=cell.verify
        )
    return CellResult(
        scenario=cell.scenario.name,
        workflow=cell.workflow_name,
        reference=reference,
        metrics=row,
    )
