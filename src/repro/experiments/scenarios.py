"""The paper's three execution-time scenarios (Sect. IV-B).

``pareto`` draws Feitelson Pareto runtimes; ``best`` makes all tasks
equal with the workflow fitting one BTU sequentially; ``worst`` makes
every task overrun a BTU even on the fastest instance.  A scenario is a
pure function of ``(workflow shape, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List

from repro.cloud.platform import CloudPlatform
from repro.errors import ExperimentError
from repro.util.suggest import unknown_name_message
from repro.workflows.dag import Workflow
from repro.workloads.base import ExecutionTimeModel, apply_model
from repro.workloads.pareto import ParetoModel
from repro.workloads.uniform import BestCaseModel, WorstCaseModel


@dataclass(frozen=True)
class Scenario:
    """A named execution-time regime applied to workflow shapes."""

    name: str
    model_factory: Callable[[], ExecutionTimeModel]
    #: stochastic scenarios consume the sweep seed; deterministic ones don't
    stochastic: bool = False

    def apply(self, workflow: Workflow, seed=None) -> Workflow:
        model = self.model_factory()
        return apply_model(workflow, model, seed if self.stochastic else None)


def paper_scenarios(platform: CloudPlatform | None = None) -> List[Scenario]:
    """Pareto / best / worst, parameterized by the platform's BTU and
    top speed-up so the boundary properties hold by construction."""
    platform = platform or CloudPlatform.ec2()
    btu = platform.btu_seconds
    max_speedup = max(t.speedup for t in platform.catalog.values())
    # functools.partial instead of lambdas so a Scenario pickles across
    # process-pool workers (repro.experiments.parallel).
    return [
        Scenario("pareto", ParetoModel, stochastic=True),
        Scenario("best", partial(BestCaseModel, btu_seconds=btu)),
        Scenario(
            "worst",
            partial(
                WorstCaseModel,
                btu_seconds=btu,
                max_speedup=max_speedup,
                factor=max_speedup + 0.1,
            ),
        ),
    ]


def scenario(name: str, platform: CloudPlatform | None = None) -> Scenario:
    """Look up one of the paper's scenarios by name."""
    scenarios = paper_scenarios(platform)
    for s in scenarios:
        if s.name == name.lower():
            return s
    raise ExperimentError(
        unknown_name_message("scenario", name, (s.name for s in scenarios))
    )


def scenario_map(platform: CloudPlatform | None = None) -> Dict[str, Scenario]:
    return {s.name: s for s in paper_scenarios(platform)}
