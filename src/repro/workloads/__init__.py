"""Execution-time and data-size scenario models (paper Sect. IV-B)."""

from repro.workloads.base import ExecutionTimeModel, apply_model
from repro.workloads.pareto import (
    ParetoModel,
    ParetoDataModel,
    pareto_cdf,
    FEITELSON_RUNTIME_SHAPE,
    FEITELSON_SIZE_SHAPE,
    FEITELSON_SCALE,
)
from repro.workloads.uniform import BestCaseModel, WorstCaseModel, ConstantModel
from repro.workloads.synthetic import CategoryScaledModel, TableModel

__all__ = [
    "ExecutionTimeModel",
    "apply_model",
    "ParetoModel",
    "ParetoDataModel",
    "pareto_cdf",
    "FEITELSON_RUNTIME_SHAPE",
    "FEITELSON_SIZE_SHAPE",
    "FEITELSON_SCALE",
    "BestCaseModel",
    "WorstCaseModel",
    "ConstantModel",
    "CategoryScaledModel",
    "TableModel",
]
